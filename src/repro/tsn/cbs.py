"""802.1Qav Credit-Based Shaper (CBS).

The AVB-era TSN shaper: each shaped class is given an *idle slope* (its
reserved bandwidth).  A class may transmit only while its credit is
non-negative; credit accrues at the idle slope while frames wait, and
drains at the send slope (idle slope minus the port rate) during that
class's own transmissions.  The effect is bandwidth-limited, burst-smoothed
service — weaker guarantees than a gate schedule (no fixed windows, so
jitter is bounded but not zero), in exchange for zero configuration beyond
per-class bandwidth reservations.

Attach to a port as its ``shaper``::

    port.shaper = CreditBasedShaper({6: 100e6})   # 100 Mbit/s for PCP 6

Unshaped classes transmit whenever no shaped class is eligible, in strict
priority order, exactly as 802.1Q describes CBS coexisting with strict
priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.packet import Packet
from ..net.queues import StrictPriorityQueue


@dataclass
class _ClassState:
    idle_slope_bps: float
    credit_bits: float = 0.0
    last_update_ns: int = 0
    #: whether frames were waiting at the previous accounting step —
    #: positive credit only accrues across intervals with a backlog.
    had_backlog: bool = False


class CreditBasedShaper:
    """Per-class credit accounting over a strict-priority queue."""

    def __init__(self, idle_slopes_bps: dict[int, float]) -> None:
        if not idle_slopes_bps:
            raise ValueError("CBS needs at least one shaped class")
        for pcp, slope in idle_slopes_bps.items():
            if not 0 <= pcp <= 7:
                raise ValueError(f"invalid PCP {pcp}")
            if slope <= 0:
                raise ValueError(f"idle slope must be positive (PCP {pcp})")
        self._classes = {
            pcp: _ClassState(idle_slope_bps=slope)
            for pcp, slope in idle_slopes_bps.items()
        }
        #: (pcp, duration_ns) of the transmission we last released, pending
        #: credit drain at the next accounting step.
        self._draining: tuple[int, int] | None = None
        self.credit_blocks = 0

    def credit_of(self, pcp: int) -> float:
        """Current credit (bits) of one shaped class (for tests/monitoring)."""
        return self._classes[pcp].credit_bits

    # -- the Port.shaper interface --------------------------------------------

    def select(
        self,
        now_ns: int,
        queue: StrictPriorityQueue,
        bandwidth_bps: float,
    ) -> tuple[Packet | None, int | None]:
        """Pick the next transmittable frame.

        Returns ``(packet, None)`` to transmit now, ``(None, retry_ns)``
        when a shaped class must wait for credit, ``(None, None)`` idle.
        """
        if not isinstance(queue, StrictPriorityQueue):
            raise TypeError("CBS requires a StrictPriorityQueue")
        self._settle_drain(bandwidth_bps)
        self._accrue(now_ns, queue)
        if len(queue) == 0:
            return None, None
        best_retry: int | None = None
        for pcp in range(7, -1, -1):
            head = queue.peek_from([pcp])
            if head is None:
                continue
            state = self._classes.get(pcp)
            if state is None:
                # Unshaped class: plain strict priority.
                return queue.dequeue_from([pcp]), None
            if state.credit_bits >= 0.0:
                released = queue.dequeue_from([pcp])
                assert released is not None
                tx_ns = released.serialization_time_ns(bandwidth_bps)
                self._draining = (pcp, tx_ns)
                return released, None
            # Negative credit: compute when it reaches zero.
            self.credit_blocks += 1
            wait_ns = int(
                -state.credit_bits / state.idle_slope_bps * 1e9
            ) + 1
            if best_retry is None or wait_ns < best_retry:
                best_retry = wait_ns
        return None, best_retry

    # -- credit accounting -------------------------------------------------------

    def _settle_drain(self, bandwidth_bps: float) -> None:
        """Apply the send-slope drain of the last released transmission."""
        if self._draining is None:
            return
        pcp, tx_ns = self._draining
        self._draining = None
        state = self._classes[pcp]
        send_slope = state.idle_slope_bps - bandwidth_bps  # negative
        state.credit_bits += send_slope * tx_ns / 1e9
        # During that transmission, *other* shaped classes with queued
        # frames accrued at their idle slopes — handled by _accrue via
        # last_update_ns, so nothing more to do here.

    def _accrue(self, now_ns: int, queue: StrictPriorityQueue) -> None:
        occupancy = queue.occupancy_by_pcp()
        for pcp, state in self._classes.items():
            elapsed = now_ns - state.last_update_ns
            state.last_update_ns = now_ns
            waiting = occupancy.get(pcp, 0) > 0
            if elapsed > 0 and (state.had_backlog or state.credit_bits < 0.0):
                # Credit accrues while frames wait or while recovering
                # from negative territory.  (Selection runs at every
                # enqueue, so had_backlog tracks the whole interval.)
                state.credit_bits += state.idle_slope_bps * elapsed / 1e9
            if not waiting and state.credit_bits > 0.0:
                # The standard: positive credit is reset when the queue
                # empties — no banking across idle periods.
                state.credit_bits = 0.0
            state.had_backlog = waiting

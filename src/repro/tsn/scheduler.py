"""TSN schedule synthesis.

The paper notes TSN "enables the usage of arbitrary scheduling algorithms
that define pre-computed transmission schedules for pre-defined flows".
This module implements a *no-wait* greedy synthesizer: each cyclic flow gets
an injection offset such that, assuming it never queues, its transmission
windows on every link of its path collide with no other scheduled flow.
The resulting per-port windows are emitted as 802.1Qbv gate control lists.

No-wait scheduling is the strongest guarantee: a feasible schedule implies
zero queueing delay and zero jitter for every scheduled flow, which the
integration tests assert end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..net.flows import FlowSpec
from ..net.link import Port
from ..net.packet import Packet
from ..net.routing import shortest_path
from ..net.switch import Switch
from ..net.topology import Topology
from ..obs import get_registry, get_tracer
from .gcl import ALL_PCPS, GateControlEntry, GateControlList
from .shaper import TimeAwareShaper


class InfeasibleScheduleError(RuntimeError):
    """Raised when no conflict-free offset assignment is found."""


@dataclass
class HopWindow:
    """One transmission window of one flow on one egress port."""

    port: Port
    start_ns: int  # offset within the flow's period
    duration_ns: int


@dataclass
class ScheduledFlow:
    """A flow with its synthesized injection offset and per-hop windows."""

    spec: FlowSpec
    offset_ns: int
    hops: list[HopWindow] = field(default_factory=list)


def _lcm(values: list[int]) -> int:
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


def _frame_tx_ns(spec: FlowSpec, bandwidth_bps: float) -> int:
    probe = Packet(src=spec.src, dst=spec.dst, payload_bytes=spec.payload_bytes)
    return probe.serialization_time_ns(bandwidth_bps)


class ScheduleSynthesizer:
    """Greedy no-wait scheduler over a routed topology.

    Parameters
    ----------
    topo:
        Topology with static routes already installed (the synthesizer
        recomputes shortest paths itself, so tables and schedule agree as
        long as both use BFS shortest paths).
    granularity_ns:
        Offset search step.  Smaller finds more schedules but is slower.
    """

    def __init__(self, topo: Topology, granularity_ns: int = 1_000) -> None:
        if granularity_ns <= 0:
            raise ValueError("granularity must be positive")
        self.topo = topo
        self.granularity_ns = granularity_ns

    # -- path/timing helpers -------------------------------------------------

    def _egress_ports(self, device_names: list[str]) -> list[Port]:
        """The egress port used at each hop of a device-name path."""
        ports = []
        for current, nxt in zip(device_names, device_names[1:]):
            device = self.topo.devices[current]
            for port in device.ports:
                peer = port.peer
                if peer is not None and peer.device.name == nxt:
                    ports.append(port)
                    break
            else:
                raise ValueError(f"no link between {current} and {nxt}")
        return ports

    def _hop_windows(self, spec: FlowSpec, offset_ns: int) -> list[HopWindow]:
        """Transmission windows along the path for injection at ``offset_ns``."""
        path = shortest_path(self.topo, spec.src, spec.dst)
        ports = self._egress_ports(path)
        windows: list[HopWindow] = []
        cursor = offset_ns
        for port in ports:
            link = port.link
            assert link is not None
            tx_ns = _frame_tx_ns(spec, link.bandwidth_bps)
            windows.append(HopWindow(port=port, start_ns=cursor, duration_ns=tx_ns))
            cursor += tx_ns + link.propagation_delay_ns
            peer = port.peer
            if peer is not None and isinstance(peer.device, Switch):
                cursor += peer.device.processing_delay_ns
            elif peer is not None:
                # Server-centric relays (BCube) add their forwarding cost.
                cursor += getattr(peer.device, "forwarding_delay_ns", 0)
        return windows

    # -- synthesis -----------------------------------------------------------

    def synthesize(self, specs: list[FlowSpec]) -> "TsnSchedule":
        """Assign offsets to all flows; raise when a flow cannot be placed."""
        for spec in specs:
            if spec.period_ns is None or spec.period_ns <= 0:
                raise ValueError(f"flow {spec.flow_id} is not cyclic")
        hyperperiod = _lcm([spec.period_ns for spec in specs])  # type: ignore[misc]
        # port name -> list of (start, end) busy intervals over the hyperperiod
        busy: dict[str, list[tuple[int, int]]] = {}
        scheduled: list[ScheduledFlow] = []
        placed = get_registry().counter("tsn.scheduler.flows_placed")
        with get_tracer().span(
            "tsn.synthesize", flows=len(specs), hyperperiod_ns=hyperperiod
        ):
            # Shortest periods first: they are the hardest to place.
            for spec in sorted(specs, key=lambda s: (s.period_ns, s.flow_id)):
                placement = self._place_flow(spec, hyperperiod, busy)
                if placement is None:
                    raise InfeasibleScheduleError(
                        f"no feasible offset for flow {spec.flow_id!r} "
                        f"(period {spec.period_ns} ns) at granularity "
                        f"{self.granularity_ns} ns"
                    )
                offset, windows = placement
                self._occupy(spec, windows, hyperperiod, busy)
                scheduled.append(
                    ScheduledFlow(spec=spec, offset_ns=offset, hops=windows)
                )
                placed.inc()
        return TsnSchedule(
            flows=scheduled, hyperperiod_ns=hyperperiod, topo=self.topo
        )

    def _place_flow(
        self,
        spec: FlowSpec,
        hyperperiod: int,
        busy: dict[str, list[tuple[int, int]]],
    ) -> tuple[int, list[HopWindow]] | None:
        period = spec.period_ns
        assert period is not None
        for offset in range(0, period, self.granularity_ns):
            windows = self._hop_windows(spec, offset)
            if self._fits(windows, period, hyperperiod, busy):
                return offset, windows
        return None

    def _fits(
        self,
        windows: list[HopWindow],
        period: int,
        hyperperiod: int,
        busy: dict[str, list[tuple[int, int]]],
    ) -> bool:
        repetitions = hyperperiod // period
        for window in windows:
            intervals = busy.get(window.port.name, ())
            for i in range(repetitions):
                start = (window.start_ns + i * period) % hyperperiod
                end = start + window.duration_ns
                for busy_start, busy_end in intervals:
                    if start < busy_end and busy_start < end:
                        return False
                    # Handle the wrap of our interval across the hyperperiod.
                    if end > hyperperiod:
                        wrapped_end = end - hyperperiod
                        if busy_start < wrapped_end:
                            return False
        return True

    def _occupy(
        self,
        spec: FlowSpec,
        windows: list[HopWindow],
        hyperperiod: int,
        busy: dict[str, list[tuple[int, int]]],
    ) -> None:
        period = spec.period_ns
        assert period is not None
        repetitions = hyperperiod // period
        for window in windows:
            intervals = busy.setdefault(window.port.name, [])
            for i in range(repetitions):
                start = (window.start_ns + i * period) % hyperperiod
                end = start + window.duration_ns
                if end <= hyperperiod:
                    intervals.append((start, end))
                else:
                    intervals.append((start, hyperperiod))
                    intervals.append((0, end - hyperperiod))


@dataclass
class TsnSchedule:
    """A synthesized schedule: flow offsets plus per-port gate programs."""

    flows: list[ScheduledFlow]
    hyperperiod_ns: int
    topo: Topology

    def offsets(self) -> dict[str, int]:
        """Flow id -> injection offset (ns within its period)."""
        return {flow.spec.flow_id: flow.offset_ns for flow in self.flows}

    def port_windows(self) -> dict[str, list[tuple[int, int]]]:
        """Port name -> sorted RT windows (start, end) over the hyperperiod."""
        result: dict[str, list[tuple[int, int]]] = {}
        for flow in self.flows:
            period = flow.spec.period_ns
            assert period is not None
            repetitions = self.hyperperiod_ns // period
            for window in flow.hops:
                intervals = result.setdefault(window.port.name, [])
                for i in range(repetitions):
                    start = (window.start_ns + i * period) % self.hyperperiod_ns
                    end = start + window.duration_ns
                    if end <= self.hyperperiod_ns:
                        intervals.append((start, end))
                    else:
                        intervals.append((start, self.hyperperiod_ns))
                        intervals.append((0, end - self.hyperperiod_ns))
        for intervals in result.values():
            intervals.sort()
        return result

    def install_gate_control(
        self,
        rt_pcps: frozenset[int] = frozenset({6, 7}),
        slack_ns: int = 200,
        base_time_ns: int = 0,
    ) -> int:
        """Install a :class:`TimeAwareShaper` on every scheduled port.

        Each port's GCL opens the RT gates exactly during its scheduled
        windows (widened by ``slack_ns`` on both sides for clock slack) and
        opens every other gate the rest of the cycle.  Returns the number of
        ports configured.
        """
        be_pcps = ALL_PCPS - rt_pcps
        ports_by_name = {
            port.name: port
            for device in self.topo.devices.values()
            for port in device.ports
        }
        configured = 0
        for port_name, windows in self.port_windows().items():
            merged = _merge_intervals(
                [
                    (max(0, start - slack_ns), min(self.hyperperiod_ns, end + slack_ns))
                    for start, end in windows
                ]
            )
            entries: list[GateControlEntry] = []
            cursor = 0
            for start, end in merged:
                if start > cursor:
                    entries.append(GateControlEntry(start - cursor, be_pcps))
                entries.append(GateControlEntry(end - start, frozenset(rt_pcps)))
                cursor = end
            if cursor < self.hyperperiod_ns:
                entries.append(
                    GateControlEntry(self.hyperperiod_ns - cursor, be_pcps)
                )
            gcl = GateControlList(entries=entries, base_time_ns=base_time_ns)
            ports_by_name[port_name].shaper = TimeAwareShaper(gcl)
            configured += 1
        return configured


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent (start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged

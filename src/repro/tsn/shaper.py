"""The 802.1Qbv time-aware shaper.

Attached to a port (``port.shaper = TimeAwareShaper(...)``), the shaper
gates which PCP queues may transmit.  It enforces the *guard band* rule: a
frame is only released if its serialization completes before its gate
closes, so a late best-effort frame can never stretch into the protected
real-time window.
"""

from __future__ import annotations

from ..net.packet import Packet
from ..net.queues import StrictPriorityQueue
from ..obs import get_registry, get_telemetry
from .gcl import GateControlList


class TimeAwareShaper:
    """Gate-driven transmission selection for one egress port."""

    def __init__(self, gcl: GateControlList) -> None:
        gcl.validate()
        self.gcl = gcl
        self.guard_band_blocks = 0
        self.gate_closed_blocks = 0
        registry = get_registry()
        self._m_guard_band = registry.counter(
            "tsn.shaper.blocks", reason="guard_band"
        )
        self._m_gate_closed = registry.counter(
            "tsn.shaper.blocks", reason="gate_closed"
        )
        # Block-count time series when the telemetry plane is active.
        self._tel = get_telemetry().shaper_probe()

    def select(
        self,
        now_ns: int,
        queue: StrictPriorityQueue,
        bandwidth_bps: float,
    ) -> tuple[Packet | None, int | None]:
        """Pick the next transmittable frame.

        Returns ``(packet, None)`` when a frame may start now, or
        ``(None, retry_delay_ns)`` when the port must re-evaluate later
        (gate closed, or open but guard band blocks the head frame).
        ``(None, None)`` means all queues are empty.
        """
        if not isinstance(queue, StrictPriorityQueue):
            raise TypeError("time-aware shaping requires a StrictPriorityQueue")
        if len(queue) == 0:
            return None, None
        open_pcps, until_change = self.gcl.state_at(now_ns)
        any_blocked = False
        # Per 802.1Qbv transmission selection: highest-priority open queue
        # whose head frame fits in its remaining gate-open time wins.
        for pcp in sorted(open_pcps, reverse=True):
            candidate = queue.peek_from([pcp])
            if candidate is None:
                continue
            tx_ns = candidate.serialization_time_ns(bandwidth_bps)
            window = self.gcl.gate_open_until(now_ns, pcp)
            if tx_ns > window:
                # Guard band: this frame cannot finish before its gate
                # closes; hold it and consider lower-priority queues.
                self.guard_band_blocks += 1
                self._m_guard_band.inc()
                if self._tel is not None:
                    self._tel.on_guard_band(now_ns)
                any_blocked = True
                continue
            return queue.dequeue_from([pcp]), None
        if not any_blocked:
            self.gate_closed_blocks += 1
            self._m_gate_closed.inc()
            if self._tel is not None:
                self._tel.on_gate_closed(now_ns)
        return None, until_change

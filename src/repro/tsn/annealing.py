"""Simulated-annealing TSN schedule synthesis.

The paper highlights that TSN permits "arbitrary scheduling algorithms".
The greedy first-fit synthesizer (:class:`ScheduleSynthesizer`) is fast but
incomplete: it scans offsets on a fixed grid and commits flows one at a
time, so tightly packed flow sets can be rejected even though a feasible
schedule exists.  :class:`AnnealingSynthesizer` searches the joint offset
space with simulated annealing over a total-overlap cost function; it finds
schedules the greedy method misses, at the price of more computation — a
real trade studied by the TSN scheduling literature the paper cites.
"""

from __future__ import annotations

import math

import numpy as np

from ..net.flows import FlowSpec
from .scheduler import (
    HopWindow,
    InfeasibleScheduleError,
    ScheduleSynthesizer,
    ScheduledFlow,
    TsnSchedule,
    _lcm,
)


class AnnealingSynthesizer(ScheduleSynthesizer):
    """Joint offset search by simulated annealing.

    Parameters
    ----------
    iterations:
        Annealing steps.  Each step re-places one flow.
    initial_temperature_ns:
        Starting acceptance temperature, in units of overlap nanoseconds.
    seed:
        Search randomness (independent of the simulation streams).
    """

    def __init__(
        self,
        topo,
        iterations: int = 20_000,
        initial_temperature_ns: float = 5_000.0,
        seed: int = 0,
    ) -> None:
        super().__init__(topo, granularity_ns=1)
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.iterations = iterations
        self.initial_temperature_ns = initial_temperature_ns
        self.seed = seed

    # -- cost model ------------------------------------------------------------

    def _port_intervals(
        self,
        windows_by_flow: dict[str, list[HopWindow]],
        periods: dict[str, int],
        hyperperiod: int,
    ) -> dict[str, list[tuple[int, int, str]]]:
        per_port: dict[str, list[tuple[int, int, str]]] = {}
        for flow_id, windows in windows_by_flow.items():
            repetitions = hyperperiod // periods[flow_id]
            for window in windows:
                intervals = per_port.setdefault(window.port.name, [])
                for i in range(repetitions):
                    start = (
                        window.start_ns + i * periods[flow_id]
                    ) % hyperperiod
                    end = start + window.duration_ns
                    if end <= hyperperiod:
                        intervals.append((start, end, flow_id))
                    else:
                        intervals.append((start, hyperperiod, flow_id))
                        intervals.append((0, end - hyperperiod, flow_id))
        return per_port

    def _total_overlap_ns(
        self,
        windows_by_flow: dict[str, list[HopWindow]],
        periods: dict[str, int],
        hyperperiod: int,
    ) -> int:
        total = 0
        for intervals in self._port_intervals(
            windows_by_flow, periods, hyperperiod
        ).values():
            intervals.sort()
            for (s1, e1, f1), (s2, e2, f2) in zip(intervals, intervals[1:]):
                if f1 != f2 and s2 < e1:
                    total += min(e1, e2) - s2
        return total

    # -- search -------------------------------------------------------------------

    def synthesize(self, specs: list[FlowSpec]) -> TsnSchedule:
        """Anneal all offsets jointly; raise if no zero-overlap state found."""
        for spec in specs:
            if spec.period_ns is None or spec.period_ns <= 0:
                raise ValueError(f"flow {spec.flow_id} is not cyclic")
        rng = np.random.default_rng(self.seed)
        periods = {spec.flow_id: spec.period_ns for spec in specs}
        hyperperiod = _lcm([spec.period_ns for spec in specs])
        offsets = {
            spec.flow_id: int(rng.integers(0, spec.period_ns))
            for spec in specs
        }
        windows = {
            spec.flow_id: self._hop_windows(spec, offsets[spec.flow_id])
            for spec in specs
        }
        spec_by_id = {spec.flow_id: spec for spec in specs}
        cost = self._total_overlap_ns(windows, periods, hyperperiod)
        best_cost = cost
        best_offsets = dict(offsets)
        for step in range(self.iterations):
            if cost == 0:
                break
            temperature = self.initial_temperature_ns * math.exp(
                -4.0 * step / self.iterations
            )
            flow_id = specs[int(rng.integers(0, len(specs)))].flow_id
            old_offset = offsets[flow_id]
            proposal = int(rng.integers(0, periods[flow_id]))
            offsets[flow_id] = proposal
            windows[flow_id] = self._hop_windows(
                spec_by_id[flow_id], proposal
            )
            new_cost = self._total_overlap_ns(windows, periods, hyperperiod)
            accept = new_cost <= cost or rng.random() < math.exp(
                -(new_cost - cost) / max(temperature, 1e-9)
            )
            if accept:
                cost = new_cost
                if cost < best_cost:
                    best_cost = cost
                    best_offsets = dict(offsets)
            else:
                offsets[flow_id] = old_offset
                windows[flow_id] = self._hop_windows(
                    spec_by_id[flow_id], old_offset
                )
        if best_cost > 0:
            raise InfeasibleScheduleError(
                f"annealing did not reach zero overlap "
                f"(best residual {best_cost} ns after {self.iterations} "
                f"iterations)"
            )
        scheduled = [
            ScheduledFlow(
                spec=spec,
                offset_ns=best_offsets[spec.flow_id],
                hops=self._hop_windows(spec, best_offsets[spec.flow_id]),
            )
            for spec in specs
        ]
        return TsnSchedule(
            flows=scheduled, hyperperiod_ns=hyperperiod, topo=self.topo
        )

"""802.1Qbv gate control lists.

A :class:`GateControlList` is a cyclic sequence of entries, each opening a
subset of the eight PCP gates for a duration.  The time-aware shaper
(:mod:`repro.tsn.shaper`) evaluates it to decide which queues may transmit
at a given instant and when the next gate change happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ALL_PCPS = frozenset(range(8))


@dataclass(frozen=True)
class GateControlEntry:
    """One row of a gate control list."""

    duration_ns: int
    open_pcps: frozenset[int]

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("entry duration must be positive")
        if not self.open_pcps <= ALL_PCPS:
            raise ValueError(f"invalid PCPs {self.open_pcps - ALL_PCPS}")


@dataclass
class GateControlList:
    """A cyclic gate schedule anchored at ``base_time_ns``."""

    entries: list[GateControlEntry] = field(default_factory=list)
    base_time_ns: int = 0

    @property
    def cycle_time_ns(self) -> int:
        """Sum of all entry durations."""
        return sum(entry.duration_ns for entry in self.entries)

    def validate(self) -> None:
        """Raise if the list is unusable."""
        if not self.entries:
            raise ValueError("gate control list has no entries")
        if self.cycle_time_ns <= 0:
            raise ValueError("cycle time must be positive")

    def state_at(self, time_ns: int) -> tuple[frozenset[int], int]:
        """Return ``(open_pcps, ns_until_next_change)`` at ``time_ns``."""
        self.validate()
        cycle = self.cycle_time_ns
        phase = (time_ns - self.base_time_ns) % cycle
        elapsed = 0
        for entry in self.entries:
            if phase < elapsed + entry.duration_ns:
                remaining = elapsed + entry.duration_ns - phase
                return entry.open_pcps, remaining
            elapsed += entry.duration_ns
        # Unreachable when validate() holds, but keep a safe fallback.
        last = self.entries[-1]
        return last.open_pcps, cycle - phase

    def gate_open_until(self, time_ns: int, pcp: int) -> int:
        """How long (ns) the gate for ``pcp`` stays open from ``time_ns``.

        Returns 0 when the gate is currently closed.  Scans forward through
        consecutive entries that keep the gate open (a gate may span rows).
        """
        self.validate()
        open_pcps, remaining = self.state_at(time_ns)
        if pcp not in open_pcps:
            return 0
        total = remaining
        cycle = self.cycle_time_ns
        # Walk subsequent entries; stop after one full cycle (always-open gate).
        probe = time_ns + remaining
        while total < cycle:
            open_pcps, segment = self.state_at(probe)
            if pcp not in open_pcps:
                break
            total += segment
            probe += segment
        return min(total, cycle)

    def next_open_delay(self, time_ns: int, pcp: int) -> int | None:
        """Nanoseconds until the ``pcp`` gate next opens (0 if open now).

        Returns ``None`` when the gate never opens in this schedule.
        """
        self.validate()
        open_pcps, remaining = self.state_at(time_ns)
        if pcp in open_pcps:
            return 0
        waited = remaining
        cycle = self.cycle_time_ns
        probe = time_ns + remaining
        while waited <= cycle:
            open_pcps, segment = self.state_at(probe)
            if pcp in open_pcps:
                return waited
            waited += segment
            probe += segment
        return None


def always_open() -> GateControlList:
    """A degenerate GCL with every gate permanently open."""
    return GateControlList(
        entries=[GateControlEntry(duration_ns=1_000_000, open_pcps=ALL_PCPS)]
    )


def protected_window_gcl(
    cycle_ns: int,
    rt_window_ns: int,
    rt_pcps: frozenset[int] = frozenset({6, 7}),
    rt_offset_ns: int = 0,
    base_time_ns: int = 0,
) -> GateControlList:
    """A classic two-window schedule: an exclusive RT window, rest best-effort.

    The RT window of ``rt_window_ns`` starts ``rt_offset_ns`` into each
    cycle; only ``rt_pcps`` may send during it.  Outside it, every *other*
    PCP may send (the RT gates are closed so RT frames wait for their
    window — this is what makes the traffic deterministic).
    """
    if not 0 < rt_window_ns < cycle_ns:
        raise ValueError("RT window must be positive and smaller than the cycle")
    if not 0 <= rt_offset_ns < cycle_ns:
        raise ValueError("RT offset must lie within the cycle")
    if rt_offset_ns + rt_window_ns > cycle_ns:
        raise ValueError("RT window must not wrap the cycle boundary")
    be_pcps = ALL_PCPS - rt_pcps
    entries: list[GateControlEntry] = []
    if rt_offset_ns > 0:
        entries.append(GateControlEntry(rt_offset_ns, be_pcps))
    entries.append(GateControlEntry(rt_window_ns, frozenset(rt_pcps)))
    tail = cycle_ns - rt_offset_ns - rt_window_ns
    if tail > 0:
        entries.append(GateControlEntry(tail, be_pcps))
    return GateControlList(entries=entries, base_time_ns=base_time_ns)

"""Span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* (wall-clock intervals opened with the
``span()`` context manager), *instants* (point events), and raw *complete*
events, and serializes them in the Chrome trace-event format — the JSON
dialect Perfetto and ``chrome://tracing`` load directly — or as JSON lines
(one event per line) for ad-hoc tooling.

Two time domains coexist:

- **wall clock** — ``span()`` / ``instant()`` stamp events with microseconds
  since the tracer's epoch, on the calling thread's track.  This is what
  profiles the reproduction stack itself (runner jobs, figure phases,
  ``Simulator.run``).
- **simulated time** — models emit windows that exist only inside the
  simulation (e.g. an InstaPLC crash-to-switchover window) with
  :meth:`Tracer.sim_span`, which maps simulated nanoseconds onto a dedicated
  track (``tid=SIM_TRACK``, 1 µs of track time per simulated µs).

Every event carries the trace-event schema's required fields: ``ph``,
``ts``, ``name``, ``pid``, ``tid`` (plus ``dur`` for complete events and
``s`` for instants), with user attributes under ``args``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

#: The ``tid`` of the synthetic track carrying simulated-time events.
SIM_TRACK = 1_000_000


class Span:
    """An open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start_us")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_us = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach additional attributes to the span."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        self._start_us = self._tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end_us = tracer._now_us()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        tracer.add_complete(
            self.name,
            ts_us=self._start_us,
            dur_us=end_us - self._start_us,
            **self.args,
        )


class Tracer:
    """Collects trace events and serializes them for Perfetto."""

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self.events: list[dict[str, Any]] = []
        self.pid = os.getpid()
        self._epoch_ns = time.perf_counter_ns()
        # Wall-clock birth time of this tracer: the anchor the sweep-trace
        # merger uses to shift this process's (perf-counter-relative)
        # events onto the supervising process's absolute timeline.
        self.epoch_unix = time.time()
        # Name the process track so Perfetto shows something readable.
        self.events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self.pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": process_name},
            }
        )
        self.events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": self.pid,
                "tid": SIM_TRACK,
                "ts": 0,
                "args": {"name": "simulated-time"},
            }
        )

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1_000

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a wall-clock span: ``with tracer.span("phase", k=v): ...``."""
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current wall-clock instant."""
        self.events.append(
            {
                "ph": "i",
                "ts": round(self._now_us(), 3),
                "s": "t",
                "name": name,
                "pid": self.pid,
                "tid": threading.get_ident(),
                "args": attrs,
            }
        )

    def add_complete(
        self, name: str, ts_us: float, dur_us: float, **attrs: Any
    ) -> None:
        """Record a complete ("X") event with explicit timing."""
        self.events.append(
            {
                "ph": "X",
                "ts": round(ts_us, 3),
                "dur": round(max(dur_us, 0.0), 3),
                "name": name,
                "pid": self.pid,
                "tid": threading.get_ident(),
                "args": attrs,
            }
        )

    def sim_span(
        self, name: str, start_ns: int, end_ns: int, **attrs: Any
    ) -> None:
        """Record a simulated-time window on the dedicated sim track.

        Simulated nanoseconds map 1000:1 onto track microseconds, so a 1 ms
        simulated window renders as 1 ms in Perfetto.
        """
        self.events.append(
            {
                "ph": "X",
                "ts": start_ns / 1_000,
                "dur": max(end_ns - start_ns, 0) / 1_000,
                "name": name,
                "pid": self.pid,
                "tid": SIM_TRACK,
                "args": {"start_ns": start_ns, "end_ns": end_ns, **attrs},
            }
        )

    def __len__(self) -> int:
        return len(self.events)

    # -- export -------------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``)."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"epoch_unix": round(self.epoch_unix, 6)},
        }

    def write_chrome(self, path) -> int:
        """Write Perfetto-loadable JSON; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
        return len(self.events)

    def write_jsonl(self, path) -> int:
        """Write one JSON event per line; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return len(self.events)


class _NullSpan:
    """Shared no-op span."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer handed out while tracing is disabled."""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        pass

    def add_complete(
        self, name: str, ts_us: float, dur_us: float, **attrs: Any
    ) -> None:
        pass

    def sim_span(
        self, name: str, start_ns: int, end_ns: int, **attrs: Any
    ) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

"""Unified observability: metrics registry, span tracing, profiling hooks.

Three facets, one activation model:

- **Metrics** — labelled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments in a :class:`MetricsRegistry`
  (:mod:`repro.obs.metrics`).
- **Tracing** — a :class:`Tracer` of spans and instants, exportable as
  Chrome trace-event JSON (Perfetto / ``chrome://tracing``) and JSONL
  (:mod:`repro.obs.tracing`).
- **Profiling** — opt-in per-event-callback wall-time attribution in the
  simulator event loop, aggregated into a hot-spot table
  (:mod:`repro.obs.profiling`).

Everything is off by default and scoped with :func:`capture`
(:mod:`repro.obs.runtime`); disabled call sites reduce to no-ops.  The
experiment runner activates a capture per job when asked
(``repro sweep --profile --trace-out DIR``) and embeds the snapshots in the
run manifest; ``repro obs manifest.json`` renders them back.

Three cross-run companions build on the per-run layer (imported lazily —
``repro.obs.<name>`` — so the in-run hot path pays nothing for them):

- :mod:`repro.obs.report` — aggregate one finished run's manifest, rows,
  metrics, and verdicts into self-contained HTML + markdown reports.
- :mod:`repro.obs.history` — the append-only bench history store with
  MAD-banded regression detection (``repro bench record/compare``).
- :mod:`repro.obs.status` — the live ``status.json`` heartbeat a running
  sweep maintains for ``repro obs tail --follow``.
"""

import importlib

from .metrics import (
    DEFAULT_NS_EDGES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    fixed_width_edges,
)
from .profiling import HotSpot, Profiler, callback_name, hotspot_table
from .runtime import (
    ObsCapture,
    capture,
    enabled,
    get_registry,
    get_telemetry,
    get_tracer,
    profiler_for_new_sim,
)
from .telemetry import (
    NULL_TELEMETRY,
    FlightRecorder,
    NullTelemetry,
    RingSampler,
    TELEMETRY_SCHEMA,
    TelemetryHub,
)
from .tracing import NULL_TRACER, NullTracer, SIM_TRACK, Span, Tracer

#: Cross-run submodules resolved on first attribute access.
_LAZY_SUBMODULES = ("history", "report", "status", "sweeptrace")


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_NS_EDGES",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HotSpot",
    "MetricsRegistry",
    "NullRegistry",
    "NullTelemetry",
    "NullTracer",
    "ObsCapture",
    "Profiler",
    "RingSampler",
    "SIM_TRACK",
    "Span",
    "TELEMETRY_SCHEMA",
    "TelemetryHub",
    "Tracer",
    "callback_name",
    "capture",
    "enabled",
    "fixed_width_edges",
    "get_registry",
    "get_telemetry",
    "get_tracer",
    "hotspot_table",
    "profiler_for_new_sim",
]

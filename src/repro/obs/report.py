"""Cross-run reports: one document per sweep, built from its artifacts.

A finished sweep leaves a trail — the :class:`~repro.runner.manifest.RunManifest`
(v1–v3), per-figure CSV exports, per-job metrics/hot-spot snapshots, Chrome
traces, and chaos verdicts — that previously had to be read by hand.
:func:`build_report` aggregates all of it into a :class:`RunReport` that
renders as self-contained HTML (inline CSS, no external assets) and as
markdown with byte-stable tables, suitable for golden-snapshot testing:

- per-figure **status table** (status / attempts / wall time / verdict),
- **requirement-class verdicts**: each figure's exported rows judged
  against the paper's §2 timing and availability classes
  (:mod:`repro.core.requirements`), the same "measure, then compare
  against 3GPP TR 22.804 classes" discipline Figs. 4/5 apply in-run,
- **latency/jitter summaries** from embedded metrics histograms,
- merged **hot-spot table** across profiled jobs,
- a **network telemetry** section (postcard counts, top congested queues,
  per-link utilization) when the sweep ran with ``--telemetry``
  (:mod:`repro.obs.telemetry`),
- a **"Where the time went"** section when the sweep ran with
  ``--sweeptrace``: the critical-path phase breakdown (queue / spawn /
  compute / retry / checkpoint / idle) from ``sweep.events.jsonl`` plus
  per-job queue/compute timings from the manifest's PR-10 fields,
- a **failure/retry timeline** from the supervisor's v3 attempt fields,
- **chaos campaign verdicts** when the sweep contained ``chaos-*`` cells.

Determinism: given the same manifest and row files the markdown and HTML
are byte-identical — no timestamps unless the caller passes
``generated_at`` — so reports can be diffed and golden-tested.
"""

from __future__ import annotations

import csv
import html
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.requirements import (
    DATACENTER_TYPICAL,
    INDUSTRIAL_SIX_NINES,
    TIMING_CLASSES,
)
from ..runner.manifest import JobRecord, RunManifest
from ..simcore.units import MS, US
from .metrics import sorted_histogram_items
from .sweeptrace import (
    EVENTS_FILENAME,
    PHASES,
    build_timeline,
    critical_path,
    load_events,
    phase_breakdown,
)

#: How many merged hot-spot rows the report shows.
DEFAULT_TOP_HOTSPOTS = 10

#: Requirement verdict markers (kept ASCII-stable for golden diffs).
MEETS = "meets"
MISSES = "misses"
NO_DATA = "n/a"


def _num(value: Any) -> float | None:
    """Best-effort numeric coercion for CSV-sourced row values."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _fmt_s(value: float) -> str:
    return f"{value:.2f}s"


def _fmt_ns(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f}us"
    return f"{value:.0f}ns"


def _fmt_util(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value * 100:.2f}%"


def _params_text(params: dict[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(params.items())) or "-"


def job_label(record: JobRecord) -> str:
    parts = [record.figure, f"seed={record.seed}"]
    parts += [f"{k}={v}" for k, v in sorted(record.params.items())]
    return " ".join(parts)


@dataclass(frozen=True)
class RequirementVerdict:
    """One figure judged against one §2 requirement class."""

    figure: str
    requirement: str
    bound: str
    observed: str
    verdict: str  # MEETS / MISSES / NO_DATA


def _timing_verdicts(
    figure: str, observed_ns: float | None, observed_text: str, kind: str
) -> list[RequirementVerdict]:
    """Judge a worst-case latency or jitter against every timing class."""
    out = []
    for req in TIMING_CLASSES:
        bound_ns = (
            req.max_jitter_ns if kind == "jitter" else req.max_latency_ns
        )
        bound = f"{kind} <= {_fmt_ns(bound_ns)}"
        if observed_ns is None:
            verdict = NO_DATA
        else:
            verdict = MEETS if observed_ns <= bound_ns else MISSES
        out.append(
            RequirementVerdict(
                figure=figure,
                requirement=req.name,
                bound=bound,
                observed=observed_text,
                verdict=verdict,
            )
        )
    return out


def _worst(rows: list[dict[str, Any]], column: str) -> float | None:
    values = [v for row in rows for v in [_num(row.get(column))] if v is not None]
    return max(values) if values else None


def requirement_verdicts(
    figure: str, rows: list[dict[str, Any]] | None
) -> list[RequirementVerdict]:
    """Judge one figure's rows against the paper's requirement classes.

    Figures without a known mapping (e.g. ``fig1``'s corpus counts)
    return no verdicts; figures with a mapping but no exported rows
    return :data:`NO_DATA` verdicts, so the report still names the
    classes that *would* apply.
    """
    rows = rows or []
    if figure == "fig4-delay":
        worst_us = _worst(rows, "p99_us")
        worst_ns = worst_us * US if worst_us is not None else None
        text = f"p99 {_fmt_ns(worst_ns)}" if worst_ns is not None else NO_DATA
        return _timing_verdicts(figure, worst_ns, text, kind="latency")
    if figure == "fig4-jitter":
        worst_ns = _worst(rows, "p99_ns")
        text = f"p99 {_fmt_ns(worst_ns)}" if worst_ns is not None else NO_DATA
        return _timing_verdicts(figure, worst_ns, text, kind="jitter")
    if figure == "fig6":
        worst_ms = _worst(rows, "p99_latency_ms")
        worst_ns = worst_ms * MS if worst_ms is not None else None
        text = f"p99 {_fmt_ns(worst_ns)}" if worst_ns is not None else NO_DATA
        return _timing_verdicts(figure, worst_ns, text, kind="latency")
    if figure == "fig5":
        # I/O availability around the switchover: 50 ms bins with zero
        # delivered packets count as downtime.
        bins = [
            _num(row.get("to_io"))
            for row in rows
            if _num(row.get("to_io")) is not None
        ]
        if not bins:
            availability = None
            text = NO_DATA
        else:
            outage = sum(1 for v in bins if v == 0)
            availability = 1.0 - outage / len(bins)
            text = (
                f"I/O availability {availability:.4f} "
                f"({outage * 50}ms outage / {len(bins) * 50}ms)"
            )
        out = []
        for req in (INDUSTRIAL_SIX_NINES, DATACENTER_TYPICAL):
            if availability is None:
                verdict = NO_DATA
            else:
                verdict = MEETS if req.admits(availability) else MISSES
            out.append(
                RequirementVerdict(
                    figure=figure,
                    requirement=req.name,
                    bound=f"availability >= {req.availability:.6f}",
                    observed=text,
                    verdict=verdict,
                )
            )
        return out
    return []


@dataclass
class RunReport:
    """Everything :func:`build_report` extracted, ready to render."""

    source: str
    manifest: RunManifest
    rows_by_index: dict[int, list[dict[str, Any]]] = field(
        default_factory=dict
    )
    top_hotspots: int = DEFAULT_TOP_HOTSPOTS
    #: ``sweep.events.jsonl`` events when the sweep ran with
    #: ``--sweeptrace`` (``None`` otherwise).
    sweep_events: list[dict[str, Any]] | None = None

    # -- derived sections --------------------------------------------------

    def figure_rows(self, figure: str) -> list[dict[str, Any]]:
        """All loaded rows of ok cells of one figure, in job order."""
        rows: list[dict[str, Any]] = []
        for index, record in enumerate(self.manifest.records):
            if record.figure == figure and record.ok:
                rows.extend(self.rows_by_index.get(index, []))
        return rows

    def figures(self) -> list[str]:
        seen: list[str] = []
        for record in self.manifest.records:
            if record.figure not in seen:
                seen.append(record.figure)
        return seen

    def all_requirement_verdicts(self) -> list[RequirementVerdict]:
        out: list[RequirementVerdict] = []
        for figure in self.figures():
            out.extend(
                requirement_verdicts(figure, self.figure_rows(figure))
            )
        return out

    def merged_hotspots(self) -> list[dict[str, Any]]:
        """Hot-spot rows summed across all profiled jobs, hottest first."""
        merged: dict[str, dict[str, float]] = {}
        for record in self.manifest.records:
            for row in record.hotspots or []:
                slot = merged.setdefault(
                    row["name"], {"calls": 0, "total_ns": 0, "max_ns": 0}
                )
                slot["calls"] += row.get("calls", 0)
                slot["total_ns"] += row.get("total_ns", 0)
                slot["max_ns"] = max(slot["max_ns"], row.get("max_ns", 0))
        ranked = sorted(
            merged.items(), key=lambda kv: (-kv[1]["total_ns"], kv[0])
        )
        return [
            {"name": name, **values}
            for name, values in ranked[: self.top_hotspots]
        ]

    def histogram_summaries(self) -> list[dict[str, Any]]:
        """Per-job histogram stats (count/mean/min/max), stably ordered."""
        out: list[dict[str, Any]] = []
        for record in self.manifest.records:
            histograms = (record.metrics or {}).get("histograms") or {}
            for key, snap in sorted_histogram_items(histograms):
                count = snap.get("count", 0)
                mean = (snap.get("sum", 0) / count) if count else None
                out.append(
                    {
                        "job": job_label(record),
                        "histogram": key,
                        "count": count,
                        "mean_ns": mean,
                        "min_ns": snap.get("min"),
                        "max_ns": snap.get("max"),
                    }
                )
        return out

    def telemetry_records(self) -> list[JobRecord]:
        """Jobs that ran with the in-band telemetry plane active."""
        return [r for r in self.manifest.records if r.telemetry]

    def telemetry_overview(self) -> dict[str, int]:
        """Postcard / flight-recorder totals across telemetry jobs."""
        totals = {
            "jobs": 0, "postcards": 0, "packets_sampled": 0,
            "flight_events": 0, "flight_snapshots": 0,
        }
        for record in self.telemetry_records():
            digest = record.telemetry or {}
            totals["jobs"] += 1
            totals["postcards"] += digest.get("postcards", 0)
            totals["packets_sampled"] += digest.get("packets_sampled", 0)
            totals["flight_events"] += digest.get("flight_events", 0)
            totals["flight_snapshots"] += digest.get("flight_snapshots", 0)
        return totals

    def telemetry_queue_rows(self) -> list[dict[str, Any]]:
        """Top congested queues per telemetry job, in job order."""
        out: list[dict[str, Any]] = []
        for record in self.telemetry_records():
            for queue in (record.telemetry or {}).get("top_queues", []):
                out.append({"job": job_label(record), **queue})
        return out

    def telemetry_link_rows(self) -> list[dict[str, Any]]:
        """Per-link utilization per telemetry job, in job order."""
        out: list[dict[str, Any]] = []
        for record in self.telemetry_records():
            for link in (record.telemetry or {}).get("links", []):
                out.append({"job": job_label(record), **link})
        return out

    def timing_records(self) -> list[JobRecord]:
        """Jobs carrying PR-10 queue/compute timings, in job order."""
        return [
            record
            for record in self.manifest.records
            if record.queue_s is not None or record.compute_s is not None
        ]

    def sweep_phases(self) -> dict[str, float] | None:
        """Critical-path phase breakdown from the sweep trace, if any."""
        if not self.sweep_events:
            return None
        timeline = build_timeline(self.sweep_events)
        return phase_breakdown(critical_path(timeline))

    def retry_timeline(self) -> list[JobRecord]:
        """Jobs that failed, timed out, or needed more than one attempt."""
        return [
            record
            for record in self.manifest.records
            if not record.ok or record.attempts > 1
        ]

    def chaos_records(self) -> list[JobRecord]:
        return [
            record
            for record in self.manifest.records
            if record.figure.startswith("chaos-")
        ]

    # -- markdown ----------------------------------------------------------

    def to_markdown(self, generated_at: str | None = None) -> str:
        m = self.manifest
        lines = [f"# Run report — {self.source}", ""]
        if generated_at:
            lines += [f"*Generated {generated_at}.*", ""]
        lines += [
            f"- jobs: {len(m.records)} "
            f"({m.cache_hits} cached, {m.cache_misses} computed, "
            f"{m.failed} failed)",
            f"- workers: {m.workers}",
            f"- cache dir: {m.cache_dir or '(caching disabled)'}",
            f"- wall time: {_fmt_s(m.wall_time_s)}",
            "",
            "## Figure status",
            "",
            "| figure | seed | params | status | attempts | wall | rows "
            "| verdict |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ]
        for record in m.records:
            lines.append(
                f"| {record.figure} | {record.seed} "
                f"| {_params_text(record.params)} | {record.status} "
                f"| {record.attempts} | {_fmt_s(record.wall_time_s)} "
                f"| {record.rows} | {record.verdict or '-'} |"
            )
        verdicts = self.all_requirement_verdicts()
        lines += ["", "## Requirement classes (paper §2)", ""]
        if verdicts:
            lines += [
                "| figure | class | bound | observed | verdict |",
                "| --- | --- | --- | --- | --- |",
            ]
            for v in verdicts:
                lines.append(
                    f"| {v.figure} | {v.requirement} | {v.bound} "
                    f"| {v.observed} | {v.verdict} |"
                )
        else:
            lines.append("No figure in this run maps to a §2 class.")
        summaries = self.histogram_summaries()
        if summaries:
            lines += [
                "", "## Latency / jitter histograms", "",
                "| job | histogram | count | mean | min | max |",
                "| --- | --- | --- | --- | --- | --- |",
            ]
            for s in summaries:
                lines.append(
                    f"| {s['job']} | {s['histogram']} | {s['count']} "
                    f"| {_fmt_ns(s['mean_ns'])} | {_fmt_ns(s['min_ns'])} "
                    f"| {_fmt_ns(s['max_ns'])} |"
                )
        hotspots = self.merged_hotspots()
        if hotspots:
            lines += [
                "", f"## Hot spots (top {len(hotspots)}, all jobs)", "",
                "| callback | calls | total | max |",
                "| --- | --- | --- | --- |",
            ]
            for h in hotspots:
                lines.append(
                    f"| {h['name']} | {h['calls']} "
                    f"| {_fmt_ns(h['total_ns'])} | {_fmt_ns(h['max_ns'])} |"
                )
        tele = self.telemetry_records()
        if tele:
            totals = self.telemetry_overview()
            lines += [
                "", "## Network telemetry", "",
                f"- telemetry jobs: {totals['jobs']}",
                f"- INT postcards: {totals['postcards']} "
                f"({totals['packets_sampled']} packets sampled)",
                f"- flight recorder: {totals['flight_events']} events, "
                f"{totals['flight_snapshots']} snapshots",
            ]
            queues = self.telemetry_queue_rows()
            if queues:
                lines += [
                    "", "### Top congested queues", "",
                    "| job | queue | max depth | samples |",
                    "| --- | --- | --- | --- |",
                ]
                for q in queues:
                    lines.append(
                        f"| {q['job']} | {q['queue']} | {q['max_depth']} "
                        f"| {q['samples']} |"
                    )
            links = self.telemetry_link_rows()
            if links:
                lines += [
                    "", "### Link utilization", "",
                    "| job | port | tx bytes | busy | utilization |",
                    "| --- | --- | --- | --- | --- |",
                ]
                for l in links:
                    lines.append(
                        f"| {l['job']} | {l['port']} | {l['tx_bytes']} "
                        f"| {_fmt_ns(l['busy_ns'])} "
                        f"| {_fmt_util(l.get('utilization'))} |"
                    )
        phases = self.sweep_phases()
        timed = self.timing_records()
        if phases is not None or timed:
            lines += ["", "## Where the time went", ""]
            if phases is not None:
                total = sum(phases.values())
                lines += [
                    "| phase | time | share |",
                    "| --- | --- | --- |",
                ]
                for phase in PHASES:
                    seconds = phases.get(phase, 0.0)
                    if seconds <= 0 and phase != "compute":
                        continue
                    share = (seconds / total * 100) if total else 0.0
                    lines.append(
                        f"| {phase} | {_fmt_s(seconds)} | {share:.1f}% |"
                    )
                lines.append(f"| total | {_fmt_s(total)} | 100.0% |")
            if timed:
                lines += [
                    "",
                    "| job | queue | compute | wall | attempts |",
                    "| --- | --- | --- | --- | --- |",
                ]
                for record in timed:
                    lines.append(
                        f"| {job_label(record)} "
                        f"| {_fmt_s(record.queue_s or 0.0)} "
                        f"| {_fmt_s(record.compute_s or 0.0)} "
                        f"| {_fmt_s(record.wall_time_s)} "
                        f"| {record.attempts} |"
                    )
        lines += ["", "## Failures and retries", ""]
        timeline = self.retry_timeline()
        if timeline:
            lines += [
                "| job | status | attempts | error |",
                "| --- | --- | --- | --- |",
            ]
            for record in timeline:
                lines.append(
                    f"| {job_label(record)} | {record.status} "
                    f"| {record.attempts} | {record.error or '-'} |"
                )
        else:
            lines.append("Every job completed on its first attempt.")
        chaos = self.chaos_records()
        if chaos:
            lines += [
                "", "## Chaos campaign verdicts", "",
                "| campaign | seed | params | verdict |",
                "| --- | --- | --- | --- |",
            ]
            for record in chaos:
                lines.append(
                    f"| {record.figure} | {record.seed} "
                    f"| {_params_text(record.params)} "
                    f"| {record.verdict or record.status} |"
                )
        return "\n".join(lines) + "\n"

    # -- html --------------------------------------------------------------

    def to_html(self, generated_at: str | None = None) -> str:
        """Self-contained HTML (inline CSS, no external assets)."""
        m = self.manifest

        def esc(value: Any) -> str:
            return html.escape(str(value))

        def table(headers: list[str], rows: list[list[Any]]) -> str:
            head = "".join(f"<th>{esc(h)}</th>" for h in headers)
            body = []
            for row in rows:
                cells = []
                for cell in row:
                    css = ""
                    if cell in ("ok", "cached", MEETS, "pass"):
                        css = ' class="good"'
                    elif cell in ("failed", "timeout", MISSES, "fail"):
                        css = ' class="bad"'
                    cells.append(f"<td{css}>{esc(cell)}</td>")
                body.append("<tr>" + "".join(cells) + "</tr>")
            return (
                f"<table><thead><tr>{head}</tr></thead>"
                f"<tbody>{''.join(body)}</tbody></table>"
            )

        sections: list[str] = []
        sections.append(
            "<ul>"
            f"<li>jobs: {len(m.records)} ({m.cache_hits} cached, "
            f"{m.cache_misses} computed, {m.failed} failed)</li>"
            f"<li>workers: {m.workers}</li>"
            f"<li>cache dir: {esc(m.cache_dir or '(caching disabled)')}</li>"
            f"<li>wall time: {_fmt_s(m.wall_time_s)}</li>"
            "</ul>"
        )
        sections.append("<h2>Figure status</h2>")
        sections.append(
            table(
                ["figure", "seed", "params", "status", "attempts", "wall",
                 "rows", "verdict"],
                [
                    [r.figure, r.seed, _params_text(r.params), r.status,
                     r.attempts, _fmt_s(r.wall_time_s), r.rows,
                     r.verdict or "-"]
                    for r in m.records
                ],
            )
        )
        verdicts = self.all_requirement_verdicts()
        sections.append("<h2>Requirement classes (paper §2)</h2>")
        if verdicts:
            sections.append(
                table(
                    ["figure", "class", "bound", "observed", "verdict"],
                    [[v.figure, v.requirement, v.bound, v.observed,
                      v.verdict] for v in verdicts],
                )
            )
        else:
            sections.append("<p>No figure in this run maps to a §2 class.</p>")
        summaries = self.histogram_summaries()
        if summaries:
            sections.append("<h2>Latency / jitter histograms</h2>")
            sections.append(
                table(
                    ["job", "histogram", "count", "mean", "min", "max"],
                    [
                        [s["job"], s["histogram"], s["count"],
                         _fmt_ns(s["mean_ns"]), _fmt_ns(s["min_ns"]),
                         _fmt_ns(s["max_ns"])]
                        for s in summaries
                    ],
                )
            )
        hotspots = self.merged_hotspots()
        if hotspots:
            sections.append(f"<h2>Hot spots (top {len(hotspots)})</h2>")
            sections.append(
                table(
                    ["callback", "calls", "total", "max"],
                    [
                        [h["name"], h["calls"], _fmt_ns(h["total_ns"]),
                         _fmt_ns(h["max_ns"])]
                        for h in hotspots
                    ],
                )
            )
        tele = self.telemetry_records()
        if tele:
            totals = self.telemetry_overview()
            sections.append("<h2>Network telemetry</h2>")
            sections.append(
                "<ul>"
                f"<li>telemetry jobs: {totals['jobs']}</li>"
                f"<li>INT postcards: {totals['postcards']} "
                f"({totals['packets_sampled']} packets sampled)</li>"
                f"<li>flight recorder: {totals['flight_events']} events, "
                f"{totals['flight_snapshots']} snapshots</li>"
                "</ul>"
            )
            queues = self.telemetry_queue_rows()
            if queues:
                sections.append("<h3>Top congested queues</h3>")
                sections.append(
                    table(
                        ["job", "queue", "max depth", "samples"],
                        [
                            [q["job"], q["queue"], q["max_depth"],
                             q["samples"]]
                            for q in queues
                        ],
                    )
                )
            links = self.telemetry_link_rows()
            if links:
                sections.append("<h3>Link utilization</h3>")
                sections.append(
                    table(
                        ["job", "port", "tx bytes", "busy", "utilization"],
                        [
                            [l["job"], l["port"], l["tx_bytes"],
                             _fmt_ns(l["busy_ns"]),
                             _fmt_util(l.get("utilization"))]
                            for l in links
                        ],
                    )
                )
        phases = self.sweep_phases()
        timed = self.timing_records()
        if phases is not None or timed:
            sections.append("<h2>Where the time went</h2>")
            if phases is not None:
                total = sum(phases.values())
                phase_rows = []
                for phase in PHASES:
                    seconds = phases.get(phase, 0.0)
                    if seconds <= 0 and phase != "compute":
                        continue
                    share = (seconds / total * 100) if total else 0.0
                    phase_rows.append(
                        [phase, _fmt_s(seconds), f"{share:.1f}%"]
                    )
                phase_rows.append(["total", _fmt_s(total), "100.0%"])
                sections.append(
                    table(["phase", "time", "share"], phase_rows)
                )
            if timed:
                sections.append(
                    table(
                        ["job", "queue", "compute", "wall", "attempts"],
                        [
                            [job_label(r), _fmt_s(r.queue_s or 0.0),
                             _fmt_s(r.compute_s or 0.0),
                             _fmt_s(r.wall_time_s), r.attempts]
                            for r in timed
                        ],
                    )
                )
        sections.append("<h2>Failures and retries</h2>")
        timeline = self.retry_timeline()
        if timeline:
            sections.append(
                table(
                    ["job", "status", "attempts", "error"],
                    [
                        [job_label(r), r.status, r.attempts, r.error or "-"]
                        for r in timeline
                    ],
                )
            )
        else:
            sections.append(
                "<p>Every job completed on its first attempt.</p>"
            )
        chaos = self.chaos_records()
        if chaos:
            sections.append("<h2>Chaos campaign verdicts</h2>")
            sections.append(
                table(
                    ["campaign", "seed", "params", "verdict"],
                    [
                        [r.figure, r.seed, _params_text(r.params),
                         r.verdict or r.status]
                        for r in chaos
                    ],
                )
            )
        stamp = (
            f"<p class=\"stamp\">Generated {esc(generated_at)}.</p>"
            if generated_at
            else ""
        )
        return (
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>Run report — {esc(self.source)}</title>"
            "<style>"
            "body{font-family:system-ui,sans-serif;margin:2rem;"
            "color:#1a1a1a;max-width:70rem}"
            "h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem}"
            "h3{font-size:.95rem;margin-top:1.25rem}"
            "table{border-collapse:collapse;margin:.5rem 0;width:100%}"
            "th,td{border:1px solid #d0d0d0;padding:.25rem .5rem;"
            "text-align:left;font-size:.85rem}"
            "th{background:#f2f2f2}"
            "td.good{background:#e7f5e7}td.bad{background:#fbe5e5}"
            ".stamp{color:#777;font-size:.8rem}"
            "</style></head><body>"
            f"<h1>Run report — {esc(self.source)}</h1>"
            + stamp
            + "".join(sections)
            + "</body></html>\n"
        )


def _load_rows_csv(path: Path) -> list[dict[str, Any]]:
    return list(csv.DictReader(io.StringIO(path.read_text())))


def _load_rows_chunks(
    chunks: list[str], base: Path
) -> list[dict[str, Any]] | None:
    """Load a streamed record's rows from its JSONL chunk files.

    Each chunk path is tried as written and then relative to the run
    directory (mirroring the ``rows_path`` fallback); any unreadable
    chunk makes the whole record's rows unavailable rather than partial.
    """
    from ..runner.rowstream import iter_chunk_rows

    resolved: list[Path] = []
    for chunk in chunks:
        recorded = Path(chunk)
        for candidate in (
            recorded if recorded.is_absolute() else base / recorded,
            base / recorded.name,
        ):
            if candidate.exists():
                resolved.append(candidate)
                break
        else:
            return None
    try:
        return list(iter_chunk_rows(resolved))
    except (OSError, ValueError):
        return None


def resolve_manifest_path(target: Path | str) -> Path:
    """Accept a run directory or a manifest file path."""
    target = Path(target)
    candidate = target / "manifest.json" if target.is_dir() else target
    if not candidate.exists():
        raise ValueError(
            f"no manifest at {candidate}; pass the sweep's run directory "
            f"(holding manifest.json) or a manifest file written with "
            f"--manifest"
        )
    return candidate


def build_report(
    target: Path | str, top_hotspots: int = DEFAULT_TOP_HOTSPOTS
) -> RunReport:
    """Aggregate one run directory (or manifest file) into a report.

    Row CSVs referenced by each record's ``rows_path`` are loaded when
    present — tried as written (absolute or relative to the manifest's
    directory) and then by file name inside the run directory, so a run
    directory copied from another machine still reports fully.  Records
    from a streamed sweep (PR-8) that exported no CSV are read from their
    ``row_chunks`` JSONL files instead, with the same as-written /
    by-name fallback.  Reads all manifest schema versions (v1–v3).
    """
    manifest_path = resolve_manifest_path(target)
    base = manifest_path.parent
    manifest = RunManifest.load(manifest_path)
    rows_by_index: dict[int, list[dict[str, Any]]] = {}
    for index, record in enumerate(manifest.records):
        if record.rows_path:
            recorded = Path(record.rows_path)
            for candidate in (
                recorded if recorded.is_absolute() else base / recorded,
                base / recorded.name,
            ):
                if candidate.exists():
                    try:
                        rows_by_index[index] = _load_rows_csv(candidate)
                    except (OSError, csv.Error):
                        pass
                    break
        elif record.row_chunks:
            rows = _load_rows_chunks(record.row_chunks, base)
            if rows is not None:
                rows_by_index[index] = rows
    sweep_events = None
    events_path = base / EVENTS_FILENAME
    if events_path.exists():
        try:
            sweep_events = load_events(events_path) or None
        except OSError:
            sweep_events = None
    return RunReport(
        source=base.name or str(base),
        manifest=manifest,
        rows_by_index=rows_by_index,
        top_hotspots=top_hotspots,
        sweep_events=sweep_events,
    )

"""Labelled metrics: counters, gauges, fixed-bucket histograms, registry.

The instruments follow the Prometheus naming model — a metric is identified
by a *name* plus a sorted set of ``label=value`` pairs — but are optimized
for a single-process simulation: an increment is one attribute update, and
a histogram observation is one :func:`bisect.bisect_right` over a fixed edge
list.  Components obtain instruments once (at construction) from the active
registry and hold the reference::

    from repro.obs import get_registry

    self._m_forwarded = get_registry().counter(
        "net.switch.frames", switch=name, outcome="forwarded"
    )
    ...
    self._m_forwarded.inc()

When observability is disabled (the default), :func:`repro.obs.get_registry`
returns the :class:`NullRegistry`, whose counters and gauges are *real but
unregistered* instruments (so components backed by them keep counting) and
whose histograms are a shared no-op — the hot-path cost reduces to a single
``pass`` method call.

Histogram bucket edges are nanosecond-valued and fixed at construction.
:func:`fixed_width_edges` reuses the fixed-width binning convention of
:mod:`repro.metrics.binning`, and uniform histograms convert back to a
:class:`repro.metrics.binning.BinnedSeries` via :meth:`Histogram.to_binned`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Sequence

#: Default nanosecond bucket edges: a 1-2-5 ladder from 100 ns to 10 s.
#: Wide enough for per-packet costs (100 ns) through whole-cycle latencies.
DEFAULT_NS_EDGES: tuple[int, ...] = tuple(
    mantissa * 10**exponent
    for exponent in range(2, 10)
    for mantissa in (1, 2, 5)
) + (10**10,)


def fixed_width_edges(
    bin_width_ns: int, bins: int, start_ns: int = 0
) -> tuple[int, ...]:
    """Uniform bucket edges matching :mod:`repro.metrics.binning` semantics.

    Edge ``i`` is the *exclusive* upper bound of bucket ``i``; the first
    bucket covers ``[start_ns, start_ns + bin_width_ns)`` exactly like
    :func:`repro.metrics.binning.bin_counts`.
    """
    if bin_width_ns <= 0:
        raise ValueError("bin width must be positive")
    if bins < 1:
        raise ValueError("need at least one bin")
    return tuple(start_ns + bin_width_ns * (i + 1) for i in range(bins))


def _label_key(labels: dict[str, Any]) -> str:
    """Canonical ``{a=1,b=x}`` suffix identifying a label set."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing labelled counter."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (which must not be negative)."""
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}{_label_key(self.labels)}={self.value})"


class Gauge:
    """A labelled value that can go up and down."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}{_label_key(self.labels)}={self.value})"


class Histogram:
    """A fixed-bucket histogram of nanosecond-valued observations.

    ``edges[i]`` is the exclusive upper bound of bucket ``i``; one overflow
    bucket past the last edge catches everything larger, so ``counts`` has
    ``len(edges) + 1`` entries and every observation lands somewhere.
    """

    __slots__ = ("name", "labels", "edges", "counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, Any] | None = None,
        edges: Sequence[int] | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        resolved = tuple(edges) if edges is not None else DEFAULT_NS_EDGES
        if not resolved:
            raise ValueError("histogram needs at least one bucket edge")
        if len(set(resolved)) != len(resolved):
            raise ValueError("bucket edges must be distinct")
        # Buckets are identified by their upper bound, not by insertion
        # order: edges given in any order serialize ascending, so exports
        # (manifests, reports, goldens) are byte-stable.
        self.edges = tuple(sorted(resolved))
        self.counts = [0] * (len(resolved) + 1)
        self.count = 0
        self.sum = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target and bucket:
                if index < len(self.edges):
                    bound = float(self.edges[index])
                    if self.max is not None:
                        bound = min(bound, float(self.max))
                    return bound
                return float(self.max if self.max is not None else self.edges[-1])
        return float(self.max if self.max is not None else self.edges[-1])

    def is_uniform(self) -> bool:
        """Whether the buckets share one fixed width (binning-compatible)."""
        widths = {
            self.edges[i + 1] - self.edges[i]
            for i in range(len(self.edges) - 1)
        }
        return len(widths) <= 1

    def to_binned(self):
        """View the finite buckets as a :class:`~repro.metrics.binning.BinnedSeries`.

        Only defined for uniform (fixed-width) histograms such as those built
        with :func:`fixed_width_edges`; the overflow bucket is excluded.
        """
        import numpy as np

        from ..metrics.binning import BinnedSeries

        if not self.is_uniform():
            raise ValueError("only fixed-width histograms convert to BinnedSeries")
        width = (
            self.edges[1] - self.edges[0] if len(self.edges) > 1 else self.edges[0]
        )
        start = self.edges[0] - width
        return BinnedSeries(
            bin_width_ns=int(width),
            start_ns=int(start),
            counts=np.asarray(self.counts[:-1], dtype=np.int64),
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram({self.name}{_label_key(self.labels)}, "
            f"count={self.count}, mean={self.mean:.1f})"
        )


class _NullHistogram:
    """Shared do-nothing histogram handed out while observability is off."""

    __slots__ = ()
    kind = "histogram"

    def observe(self, value: float) -> None:
        pass


NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    Instruments are keyed by ``(name, sorted labels)``; asking twice with the
    same identity returns the same object, so independent components
    naturally share an aggregate (e.g. every FIFO queue increments the one
    ``net.queue.drops{kind=fifo}`` counter).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, Any], ...]], Any] = {}

    def _get(self, factory, name: str, labels: dict[str, Any], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, labels, **kwargs)
            self._metrics[key] = metric
            return metric
        if metric.kind != factory.kind:
            raise ValueError(
                f"metric {name!r}{_label_key(labels)} already registered "
                f"as a {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, edges: Sequence[int] | None = None, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, edges=edges)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"counters": {...}, "gauges": {}, "histograms": {}}``.

        Keys are ``name{label=value,...}`` strings, values are the
        instrument snapshots (plain ints for counters/gauges, a bucket dict
        for histograms).  Every section is key-sorted — registration order
        depends on component construction order, and a stable export is
        what lets manifests, reports, and goldens diff cleanly.
        """
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for metric in sorted(
            self._metrics.values(),
            key=lambda m: f"{m.name}{_label_key(m.labels)}",
        ):
            key = f"{metric.name}{_label_key(metric.labels)}"
            out[metric.kind + "s"][key] = metric.snapshot()
        return out


class NullRegistry:
    """Registry stand-in used while observability is disabled.

    Counters and gauges are *real* but unregistered instances — components
    that expose their counts through them keep working with or without an
    active capture — while histograms collapse to the shared no-op, since
    pure-telemetry observations would otherwise pay bucket search on every
    packet.
    """

    def counter(self, name: str, **labels: Any) -> Counter:
        return Counter(name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return Gauge(name, labels)

    def histogram(
        self, name: str, edges: Sequence[int] | None = None, **labels: Any
    ) -> _NullHistogram:
        return NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()


def sorted_histogram_items(
    histograms: dict[str, Any]
) -> list[tuple[str, Any]]:
    """Histogram snapshot entries in deterministic key order.

    Manifest consumers (``repro obs``, ``repro report``) iterate exported
    histogram maps through this helper so pre-fix manifests — serialized
    in registration order — render identically to freshly written ones.
    """
    return sorted(histograms.items())

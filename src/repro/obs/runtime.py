"""Scoped activation of the observability layer.

The rest of the codebase never holds a registry or tracer directly — it
asks this module for the *active* one::

    from repro.obs import get_registry, get_tracer

    get_registry().counter("net.switch.frames", switch=name).inc()
    with get_tracer().span("figure.compute", figure=name):
        ...

By default nothing is active: :func:`get_registry` returns the
:class:`~repro.obs.metrics.NullRegistry` and :func:`get_tracer` the
:class:`~repro.obs.tracing.NullTracer`, so every call site degrades to a
no-op.  :func:`capture` installs live instances for the duration of a
``with`` block (the experiment runner wraps each job in one)::

    with capture(profile=True) as obs:
        rows = spec.run(seed=0)
    print(obs.registry.snapshot())
    print(obs.profiler.to_table())
    obs.tracer.write_chrome("job.trace.json")

Captures nest: the innermost block wins, and the previous state is restored
on exit.  ``profile=True`` additionally attaches a
:class:`~repro.obs.profiling.Profiler` to every
:class:`~repro.simcore.simulator.Simulator` constructed inside the block
(the simulator constructor calls :func:`profiler_for_new_sim`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .metrics import NULL_REGISTRY, MetricsRegistry
from .profiling import Profiler
from .tracing import NULL_TRACER, Tracer
from .telemetry import NULL_TELEMETRY, TelemetryHub

_registry_stack: list[MetricsRegistry] = []
_tracer_stack: list[Tracer] = []
_profiler_stack: list[Profiler] = []
_telemetry_stack: list[TelemetryHub] = []


def enabled() -> bool:
    """Whether any capture scope is currently active."""
    return bool(
        _registry_stack or _tracer_stack or _profiler_stack
        or _telemetry_stack
    )


def get_registry():
    """The active :class:`MetricsRegistry`, or the shared null registry."""
    return _registry_stack[-1] if _registry_stack else NULL_REGISTRY


def get_tracer():
    """The active :class:`Tracer`, or the shared null tracer."""
    return _tracer_stack[-1] if _tracer_stack else NULL_TRACER


def get_telemetry():
    """The active :class:`TelemetryHub`, or the shared null hub.

    Network components call this *once, at construction*: the real hub
    hands out probe objects, the null hub hands out ``None``, and hot
    paths guard with a single ``is not None`` test.
    """
    return _telemetry_stack[-1] if _telemetry_stack else NULL_TELEMETRY


def profiler_for_new_sim() -> Profiler | None:
    """Called by ``Simulator.__init__``: the profiler new sims attach to."""
    return _profiler_stack[-1] if _profiler_stack else None


@dataclass
class ObsCapture:
    """Handles to the instruments installed by one :func:`capture` scope."""

    registry: MetricsRegistry
    tracer: Tracer
    profiler: Profiler | None = None
    telemetry: TelemetryHub | None = None


@contextmanager
def capture(
    metrics: bool = True,
    tracing: bool = True,
    profile: bool = False,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryHub | bool | None = None,
) -> Iterator[ObsCapture]:
    """Activate observability for the dynamic extent of the block.

    ``metrics`` / ``tracing`` / ``profile`` select which facets go live;
    pass an explicit ``registry`` or ``tracer`` to accumulate into an
    existing instance (e.g. across several sweeps).  ``telemetry``
    installs an in-band network :class:`TelemetryHub` (``True`` for a
    default-configured one) — networks built inside the block attach
    samplers, INT postcard hooks, and flight-recorder probes to it.
    """
    live_registry = registry if registry is not None else MetricsRegistry()
    live_tracer = tracer if tracer is not None else Tracer()
    profiler = Profiler() if profile else None
    if telemetry is True:
        hub: TelemetryHub | None = TelemetryHub()
    elif telemetry:
        hub = telemetry
    else:
        hub = None
    if metrics:
        _registry_stack.append(live_registry)
    if tracing:
        _tracer_stack.append(live_tracer)
    if profiler is not None:
        _profiler_stack.append(profiler)
    if hub is not None:
        _telemetry_stack.append(hub)
    try:
        yield ObsCapture(
            registry=live_registry, tracer=live_tracer, profiler=profiler,
            telemetry=hub,
        )
    finally:
        if hub is not None:
            _telemetry_stack.pop()
        if profiler is not None:
            _profiler_stack.pop()
        if tracing:
            _tracer_stack.pop()
        if metrics:
            _registry_stack.pop()

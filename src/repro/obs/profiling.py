"""Opt-in wall-time attribution for simulator event callbacks.

A :class:`Profiler` wraps every event callback the
:class:`~repro.simcore.simulator.Simulator` loop executes, accumulating
wall time per *callback name* — for bound methods that is
``ClassName.method`` (``Switch.receive``), for closures the enclosing
qualname (``Port.try_transmit.<locals>.<lambda>``) — which is exactly the
"which component burned the events" attribution a slow figure sweep needs.

Profiling is opt-in: a simulator only pays the wrapping cost after
``profiler.attach(sim)`` (or when constructed inside an
``obs.capture(profile=True)`` scope); otherwise the event loop checks a
single local and calls the callback directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable


def callback_name(callback: Callable[[], Any]) -> str:
    """Attribution key for one event callback."""
    bound_to = getattr(callback, "__self__", None)
    if bound_to is not None:
        return f"{type(bound_to).__name__}.{callback.__name__}"
    return getattr(callback, "__qualname__", None) or repr(callback)


@dataclass(frozen=True)
class HotSpot:
    """Aggregated wall time of one callback name."""

    name: str
    calls: int
    total_ns: int
    max_ns: int

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_ns": self.total_ns,
            "max_ns": self.max_ns,
            "mean_ns": round(self.mean_ns, 1),
        }


class Profiler:
    """Per-callback wall-time accumulator for simulator event loops."""

    def __init__(self) -> None:
        #: name -> [calls, total_ns, max_ns]
        self._slots: dict[str, list[int]] = {}

    def attach(self, sim) -> None:
        """Make ``sim``'s event loop route callbacks through this profiler."""
        sim._profiler = self

    def run_event(self, callback: Callable[[], Any]) -> None:
        """Execute ``callback`` and charge its wall time to its name."""
        start = time.perf_counter_ns()
        try:
            callback()
        finally:
            elapsed = time.perf_counter_ns() - start
            slot = self._slots.get(callback_name(callback))
            if slot is None:
                self._slots[callback_name(callback)] = [1, elapsed, elapsed]
            else:
                slot[0] += 1
                slot[1] += elapsed
                if elapsed > slot[2]:
                    slot[2] = elapsed

    @property
    def total_ns(self) -> int:
        """Wall time across every profiled callback."""
        return sum(slot[1] for slot in self._slots.values())

    def hotspots(self, top: int | None = None) -> list[HotSpot]:
        """Callback names ranked by total wall time, hottest first."""
        spots = sorted(
            (
                HotSpot(name=name, calls=slot[0], total_ns=slot[1], max_ns=slot[2])
                for name, slot in self._slots.items()
            ),
            key=lambda spot: spot.total_ns,
            reverse=True,
        )
        return spots[:top] if top is not None else spots

    def as_rows(self, top: int | None = None) -> list[dict[str, Any]]:
        """JSON-ready hot-spot rows (for run manifests)."""
        return [spot.as_dict() for spot in self.hotspots(top)]

    def to_table(self, top: int = 15) -> str:
        """Aligned text hot-spot table."""
        spots = self.hotspots(top)
        if not spots:
            return "(no profiled events)"
        total = self.total_ns or 1
        header = ["callback", "calls", "total ms", "mean us", "max us", "share"]
        rows = [
            [
                spot.name,
                str(spot.calls),
                f"{spot.total_ns / 1e6:.2f}",
                f"{spot.mean_ns / 1e3:.2f}",
                f"{spot.max_ns / 1e3:.2f}",
                f"{100 * spot.total_ns / total:.1f}%",
            ]
            for spot in spots
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            for i in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-" * (sum(widths) + 2 * (len(widths) - 1)),
        ]
        lines += [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rows
        ]
        return "\n".join(lines)


def hotspot_table(rows: list[dict[str, Any]], top: int = 15) -> str:
    """Render manifest-style hot-spot rows (see :meth:`Profiler.as_rows`)."""
    profiler = Profiler()
    for row in rows:
        profiler._slots[row["name"]] = [
            int(row["calls"]),
            int(row["total_ns"]),
            int(row["max_ns"]),
        ]
    return profiler.to_table(top)

"""Live sweep telemetry: a heartbeated, machine-readable ``status.json``.

A multi-hour ``repro all`` used to be a black box between per-job progress
lines.  :class:`SweepStatus` gives the supervisor a single small file it
rewrites (atomically) on every job start, retry, and completion — plus the
final state — so anything on the same filesystem can watch a sweep without
touching its workers, cache keys, or results.  The JSON schema
(``repro.obs/status/v1``)::

    {
      "schema": "repro.obs/status/v1",
      "pid": 12345,
      "state": "running",          // "running" | "done" | "degraded"
      "total": 20,                 // jobs in the sweep
      "done": 12,                  // completed (any status)
      "ok": 9,
      "cached": 2,
      "failed": 1,                 // failed/timeout so far
      "retries": 3,                // retry attempts charged so far
      "workers": 4,
      "backend": "local-pool",     // executor backend; null before dispatch
      "current": ["fig5 seed=3"],  // cells in flight right now
      "elapsed_s": 81.4,
      "eta_s": 42.0,               // null until a computed job finishes
      "updated_at": 1754476800.0,  // unix time of this heartbeat
      "last_error": "fig6 seed=1: ValueError: ..."   // or null
    }

Readers use :func:`resolve_status_path` (accepts the file or the sweep's
run directory) and :func:`format_status` (the one-line rendering shared by
the in-terminal progress line and ``repro obs tail``).

The writer lives entirely in the supervising parent process: worker
payloads, cache keys, and simulation results are byte-identical with or
without a status file.  Heartbeat I/O failures are swallowed after the
first write succeeds — losing telemetry must never fail a sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

STATUS_SCHEMA = "repro.obs/status/v1"

#: Conventional file name inside a sweep's run directory.
STATUS_FILENAME = "status.json"

STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_DEGRADED = "degraded"


class SweepStatus:
    """Writer side: owned by the sweep supervisor, one per ``run_jobs``."""

    def __init__(
        self,
        path: Path | str,
        total: int,
        workers: int = 1,
        backend: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.total = total
        self.workers = max(workers, 1)
        #: Executor backend name; settable after construction because the
        #: engine resolves it only once it knows what is pending.
        self.backend = backend
        self.done = 0
        self.ok = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.last_error: str | None = None
        self.state = STATE_RUNNING
        self._current: dict[int, str] = {}
        self._durations: list[float] = []
        self._started = time.monotonic()
        self._broken = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._flush()

    # -- supervisor hooks --------------------------------------------------

    def job_started(self, index: int, label: str) -> None:
        self._current[index] = label
        self._flush()

    def job_retried(self, index: int, label: str) -> None:
        self.retries += 1
        self._current.pop(index, None)
        self._flush()

    def job_finished(self, index: int, record: Any) -> None:
        """Count one completed :class:`~repro.runner.manifest.JobRecord`."""
        self._current.pop(index, None)
        self.done += 1
        if record.status == "cached":
            self.cached += 1
        elif record.ok:
            self.ok += 1
            if record.wall_time_s > 0:
                self._durations.append(record.wall_time_s)
        else:
            self.failed += 1
            label = f"{record.figure} seed={record.seed}"
            self.last_error = f"{label}: {record.error or record.status}"
        self._flush()

    def finalize(self) -> None:
        self.state = STATE_DEGRADED if self.failed else STATE_DONE
        self._current.clear()
        self._flush()

    # -- snapshotting ------------------------------------------------------

    def eta_s(self) -> float | None:
        """Remaining-work estimate from completed computed-job durations."""
        if not self._durations:
            return None
        remaining = max(self.total - self.done, 0)
        mean = sum(self._durations) / len(self._durations)
        return remaining * mean / self.workers

    def snapshot(self) -> dict[str, Any]:
        eta = self.eta_s()
        return {
            "schema": STATUS_SCHEMA,
            "pid": os.getpid(),
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "ok": self.ok,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "workers": self.workers,
            "backend": self.backend,
            "current": [self._current[k] for k in sorted(self._current)],
            "elapsed_s": round(time.monotonic() - self._started, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
            "updated_at": time.time(),
            "last_error": self.last_error,
        }

    def _flush(self) -> None:
        if self._broken:
            return
        tmp = self.path.with_name(
            f".{self.path.name}.tmp.{os.getpid()}"
        )
        try:
            tmp.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
            os.replace(tmp, self.path)
        except OSError:
            # Telemetry is best-effort: a full disk or vanished directory
            # mid-sweep must not take the sweep down with it.
            self._broken = True


# -- reader side -----------------------------------------------------------


def resolve_status_path(target: Path | str) -> Path:
    """Resolve a status file from a path or a sweep run directory.

    Raises a friendly :class:`ValueError` (not a traceback) when nothing
    is there yet — e.g. ``repro obs tail`` pointed at a sweep that has not
    started, or at the wrong directory.
    """
    target = Path(target)
    candidate = target / STATUS_FILENAME if target.is_dir() else target
    if not candidate.exists():
        where = target if target.is_dir() else candidate.parent
        raise ValueError(
            f"no status file at {candidate}; point 'repro obs tail' at the "
            f"sweep's run directory (the one holding {STATUS_FILENAME}, "
            f"next to manifest.json) or start the sweep with --status. "
            f"Looked in: {where}"
        )
    return candidate


def load_status(path: Path | str) -> dict[str, Any]:
    """Read and validate one status snapshot."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != STATUS_SCHEMA:
        raise ValueError(
            f"{path} is not a sweep status file "
            f"(schema {payload.get('schema')!r}, expected {STATUS_SCHEMA})"
        )
    return payload


def _format_eta(eta: float | None) -> str:
    if eta is None:
        return ""
    if eta >= 90:
        return f" eta ~{eta / 60:.0f}m"
    return f" eta ~{eta:.0f}s"


def format_status(status: dict[str, Any]) -> str:
    """One-line human rendering, shared by progress lines and ``tail``."""
    parts = [
        f"[{status.get('done', 0)}/{status.get('total', 0)}]",
        f"ok={status.get('ok', 0)}",
        f"cached={status.get('cached', 0)}",
        f"failed={status.get('failed', 0)}",
    ]
    if status.get("retries"):
        parts.append(f"retries={status['retries']}")
    line = " ".join(parts)
    state = status.get("state", STATE_RUNNING)
    if state == STATE_RUNNING:
        current = status.get("current") or []
        if current:
            shown = ", ".join(current[:2])
            if len(current) > 2:
                shown += f", +{len(current) - 2} more"
            line += f" | running: {shown}"
        line += _format_eta(status.get("eta_s"))
    else:
        line += f" | {state} in {status.get('elapsed_s', 0):.1f}s"
    return line

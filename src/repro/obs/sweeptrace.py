"""End-to-end sweep tracing: the control plane's own distributed trace.

PR-8 split sweep execution across processes (engine → executor backend →
``repro worker`` children), but observability stopped at the process
boundary: a job was a single ``wall_time_s`` in the manifest and nothing
explained where a sweep's wall time actually went.  This module is the
knowledge plane over that control plane:

- the engine mints a run-level **trace id** (a digest of the sorted job
  keys — the same grid gets the same trace on every replay) and one
  **span id** per job cell;
- every backend emits structured lifecycle events through the engine's
  ``on_event`` channel — ``submitted``, ``queued``, ``attempt_start``,
  ``attempt_end`` (with outcome), ``retry_scheduled``,
  ``worker_spawn``/``worker_ready``/``worker_dead``, ``checkpoint``,
  ``cache_hit`` — which a :class:`SweepTraceRecorder` appends to
  ``sweep.events.jsonl`` (schema :data:`SWEEPTRACE_SCHEMA`) next to the
  manifest;
- the worker stdio protocol carries the span context, so the child-side
  ``runner.job`` Chrome spans are correlated with the engine's job spans
  by span id;
- :func:`build_timeline` + :func:`critical_path` reconstruct the sweep
  and compute its **critical path**: a gap-free tiling of the sweep's
  wall-clock interval into ``compute`` / ``queue`` / ``spawn`` /
  ``retry`` / ``checkpoint`` / ``idle`` segments (they sum to the total
  wall time *exactly*, by construction);
- :func:`merge_chrome` folds the engine events and the per-job child
  traces into one cross-process Chrome trace — one track per backend
  slot / worker — loadable in Perfetto;
- :func:`format_timeline` renders the terminal Gantt + critical-path
  listing behind ``repro obs timeline RUN_DIR``.

Determinism: event *content* is a pure function of the grid and the
retry schedule — ids are digests, ordering follows the engine's
deterministic dispatch — so two replays of the same ``(grid, seed)``
produce byte-identical files modulo the volatile timing fields
(:data:`VOLATILE_KEYS`, compare with :func:`canonical_lines`).  The
writer is best-effort exactly like the status heartbeat: a full disk
never takes the sweep down, and results are byte-identical with tracing
on or off.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, TextIO

SWEEPTRACE_SCHEMA = "repro.obs/sweeptrace/v1"

#: Conventional file name inside a sweep's run directory.
EVENTS_FILENAME = "sweep.events.jsonl"

#: Top-level event fields that vary between replays (wall-clock stamps,
#: measured durations, process ids, timing-laden error text).  Everything
#: else is replay-stable; see :func:`canonical_lines`.
VOLATILE_KEYS = frozenset(
    {"ts", "dur_s", "wall_s", "delay_s", "pid", "error"}
)

#: Phase names :func:`phase_breakdown` reports, in display order.
PHASES = ("compute", "queue", "spawn", "retry", "checkpoint", "idle")

_EPS = 1e-9


# -- deterministic ids ------------------------------------------------------


def sweep_trace_id(keys: Iterable[str]) -> str:
    """Run-level trace id: a digest of the sorted job cache keys.

    Depends only on *what* the sweep computes — the same grid yields the
    same trace id on every replay, machine, and backend.
    """
    digest = hashlib.blake2s(
        "\n".join(sorted(keys)).encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


def job_span_id(trace: str, key: str) -> str:
    """Per-job span id, derived from the trace id and the job's key."""
    digest = hashlib.blake2s(
        f"{trace}/{key}".encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


# -- writer -----------------------------------------------------------------


class SweepTraceWriter:
    """Append-only JSONL event sink; best-effort like the status file."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None
        self._broken = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError:
            self._broken = True

    def emit(self, ev: str, **fields: Any) -> None:
        """Append one event line; ``None`` fields are omitted."""
        if self._broken or self._handle is None:
            return
        record: dict[str, Any] = {"ev": ev, "ts": round(time.time(), 6)}
        record.update((k, v) for k, v in fields.items() if v is not None)
        try:
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
            self._handle.write("\n")
            self._handle.flush()
        except (OSError, ValueError):
            # Telemetry is best-effort: a full disk or a closed handle
            # mid-sweep must never fail the sweep itself.
            self._broken = True

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


class SweepTraceRecorder:
    """Engine-side recorder: turns ``on_event`` traffic into trace events
    plus per-job timing aggregates for the manifest.

    Owned by :func:`repro.runner.run_jobs`; one per sweep.  All clocks
    are the supervising process's wall clock — job payloads, cache keys,
    and results are byte-identical with or without a recorder.
    """

    def __init__(
        self,
        path: Path | str,
        keys: Iterable[str],
        total: int,
        workers: int,
    ) -> None:
        keys = list(keys)
        self.trace = sweep_trace_id(keys)
        self._spans = {
            index: job_span_id(self.trace, key)
            for index, key in enumerate(keys)
        }
        self._keys = list(keys)
        self._writer = SweepTraceWriter(path)
        self._started = time.time()
        #: index -> (figure, seed) labels for task-less event emission.
        self._labels: dict[int, tuple[str, int]] = {}
        self._submitted: dict[int, float] = {}
        self._first_start: dict[int, float] = {}
        self._open_attempts: dict[int, tuple[int, float]] = {}
        self._attempt_log: dict[int, list[dict[str, Any]]] = {}
        self._writer.emit(
            "sweep_start",
            schema=SWEEPTRACE_SCHEMA,
            trace=self.trace,
            total=total,
            workers=workers,
        )

    def span_for(self, index: int) -> str:
        return self._spans[index]

    def span_context(self, index: int) -> dict[str, str]:
        """The ``{"trace", "span"}`` dict a job payload carries across
        the worker protocol so child-side spans correlate."""
        return {"trace": self.trace, "span": self._spans[index]}

    # -- engine hooks ------------------------------------------------------

    def job_submitted(
        self, index: int, figure: str, seed: int, position: int
    ) -> None:
        now = time.time()
        self._labels[index] = (figure, seed)
        self._submitted[index] = now
        self._writer.emit(
            "submitted",
            span=self._spans[index],
            job=index,
            figure=figure,
            seed=seed,
            key=self._keys[index],
        )
        self._writer.emit(
            "queued", span=self._spans[index], job=index, position=position
        )

    def cache_hit(
        self, index: int, figure: str, seed: int, wall_s: float
    ) -> None:
        self._labels[index] = (figure, seed)
        self._writer.emit(
            "cache_hit",
            span=self._spans[index],
            job=index,
            figure=figure,
            seed=seed,
            wall_s=round(wall_s, 6),
        )

    def checkpoint(self, done: int, dur_s: float) -> None:
        self._writer.emit("checkpoint", done=done, dur_s=round(dur_s, 6))

    def handle(self, kind: str, task: Any, info: Any = None) -> None:
        """Dispatch one ``on_event`` emission from a backend."""
        info = info if isinstance(info, dict) else {}
        if task is None and kind in ("start", "retry", "attempt_end"):
            return  # job-level events need a task to attribute to
        if kind == "start":
            self._attempt_start(
                task.index, task.attempts, worker=info.get("worker")
            )
        elif kind == "retry":
            self._writer.emit(
                "retry_scheduled",
                span=self._spans.get(task.index),
                job=task.index,
                figure=task.figure,
                attempt=task.attempts,
                delay_s=info.get("delay_s"),
            )
        elif kind == "attempt_end":
            self.attempt_end(
                task.index,
                outcome=info.get("outcome", "failed"),
                wall_s=info.get("wall_s"),
                pid=info.get("pid"),
                error=info.get("error"),
            )
        elif kind in ("worker_spawn", "worker_ready", "worker_dead"):
            self._writer.emit(
                kind,
                worker=info.get("worker"),
                pid=info.get("pid"),
                reason=info.get("reason"),
            )

    def _attempt_start(
        self, index: int, attempt: int, worker: int | None = None
    ) -> None:
        now = time.time()
        self._first_start.setdefault(index, now)
        self._open_attempts[index] = (attempt, now)
        figure, _ = self._labels.get(index, ("?", 0))
        self._writer.emit(
            "attempt_start",
            span=self._spans.get(index),
            job=index,
            figure=figure,
            attempt=attempt,
            worker=worker,
        )

    def attempt_end(
        self,
        index: int,
        outcome: str,
        wall_s: float | None = None,
        pid: int | None = None,
        error: str | None = None,
    ) -> None:
        now = time.time()
        attempt, opened = self._open_attempts.pop(index, (1, now))
        if wall_s is None:
            wall_s = max(now - opened, 0.0)
        figure, _ = self._labels.get(index, ("?", 0))
        self._attempt_log.setdefault(index, []).append(
            {
                "attempt": attempt,
                "outcome": outcome,
                "start_s": round(opened - self._started, 6),
                "wall_s": round(wall_s, 6),
            }
        )
        self._writer.emit(
            "attempt_end",
            span=self._spans.get(index),
            job=index,
            figure=figure,
            attempt=attempt,
            outcome=outcome,
            wall_s=round(wall_s, 6),
            pid=pid,
            error=error,
        )

    def timings_for(self, index: int) -> dict[str, Any]:
        """Per-job ``queue_s``/``compute_s``/``attempt_timings`` for the
        manifest record (tolerant-read additive fields)."""
        log = self._attempt_log.get(index, [])
        queue_s = None
        if index in self._submitted and index in self._first_start:
            queue_s = max(
                self._first_start[index] - self._submitted[index], 0.0
            )
        return {
            "queue_s": round(queue_s, 6) if queue_s is not None else None,
            "compute_s": round(sum(a["wall_s"] for a in log), 6)
            if log
            else None,
            "attempt_timings": log or None,
        }

    def finalize(
        self, wall_s: float, ok: int, failed: int, cached: int,
        backend: str | None = None,
    ) -> None:
        self._writer.emit(
            "sweep_end",
            trace=self.trace,
            backend=backend,
            ok=ok,
            failed=failed,
            cached=cached,
            wall_s=round(wall_s, 6),
        )
        self._writer.close()


# -- loading ----------------------------------------------------------------


def resolve_events_path(target: Path | str) -> Path:
    """Resolve an events file from a path or a sweep run directory."""
    target = Path(target)
    candidate = target / EVENTS_FILENAME if target.is_dir() else target
    if not candidate.exists():
        where = target if target.is_dir() else candidate.parent
        raise ValueError(
            f"no sweep trace at {candidate}; run the sweep with "
            f"--sweeptrace (writes {EVENTS_FILENAME} next to the "
            f"manifest) and point 'repro obs timeline' at the run "
            f"directory. Looked in: {where}"
        )
    return candidate


def load_events(path: Path | str) -> list[dict[str, Any]]:
    """Read one events file; skips blank and truncated trailing lines."""
    events: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # a crash mid-write can truncate the last line
        if isinstance(event, dict) and "ev" in event:
            events.append(event)
    return events


def canonical_lines(path: Path | str) -> list[str]:
    """Events re-serialized without the volatile timing fields.

    Two replays of the same ``(grid, seed)`` sweep compare equal on
    these lines — the byte-stability contract of the schema.
    """
    out = []
    for event in load_events(path):
        stable = {k: v for k, v in event.items() if k not in VOLATILE_KEYS}
        out.append(json.dumps(stable, sort_keys=True, separators=(",", ":")))
    return out


# -- timeline model ---------------------------------------------------------


@dataclass
class AttemptSpan:
    """One execution attempt reconstructed from start/end events."""

    job: int
    figure: str
    attempt: int
    start: float
    end: float
    outcome: str
    worker: int | None = None
    span: str | None = None
    pid: int | None = None

    @property
    def dur(self) -> float:
        return max(self.end - self.start, 0.0)


@dataclass
class JobTrack:
    job: int
    figure: str
    seed: int | None = None
    span: str | None = None
    key: str | None = None
    submitted: float | None = None
    cached: bool = False


@dataclass
class WorkerTrack:
    worker: int
    pid: int | None = None
    spawned: float | None = None
    ready: float | None = None
    died: float | None = None


@dataclass
class SweepTimeline:
    """A sweep reconstructed from its ``sweep.events.jsonl``."""

    trace: str = ""
    total: int = 0
    workers: int = 1
    backend: str | None = None
    t0: float = 0.0
    t1: float = 0.0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    jobs: dict[int, JobTrack] = field(default_factory=dict)
    attempts: list[AttemptSpan] = field(default_factory=list)
    #: ``(start, end)`` manifest-checkpoint write windows.
    checkpoints: list[tuple[float, float]] = field(default_factory=list)
    #: ``(job, start, end)`` cache-lookup windows.
    cache_hits: list[tuple[int, float, float]] = field(default_factory=list)
    worker_tracks: dict[int, WorkerTrack] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    def job_label(self, index: int) -> str:
        track = self.jobs.get(index)
        if track is None:
            return f"job {index}"
        seed = f" seed={track.seed}" if track.seed is not None else ""
        return f"{track.figure}{seed}"


def build_timeline(events: list[dict[str, Any]]) -> SweepTimeline:
    """Reconstruct the sweep timeline from its event stream."""
    tl = SweepTimeline()
    last_ts = 0.0
    saw_end = False
    for event in events:
        kind = event.get("ev")
        ts = float(event.get("ts", last_ts))
        last_ts = max(last_ts, ts)
        if kind == "sweep_start":
            tl.trace = event.get("trace", "")
            tl.total = event.get("total", 0)
            tl.workers = event.get("workers", 1)
            tl.t0 = ts
        elif kind == "submitted":
            job = int(event["job"])
            tl.jobs[job] = JobTrack(
                job=job,
                figure=event.get("figure", "?"),
                seed=event.get("seed"),
                span=event.get("span"),
                key=event.get("key"),
                submitted=ts,
            )
        elif kind == "cache_hit":
            job = int(event["job"])
            wall = float(event.get("wall_s", 0.0))
            tl.jobs[job] = JobTrack(
                job=job,
                figure=event.get("figure", "?"),
                seed=event.get("seed"),
                span=event.get("span"),
                cached=True,
            )
            tl.cache_hits.append((job, ts - wall, ts))
        elif kind == "attempt_start":
            job = int(event["job"])
            tl.attempts.append(
                AttemptSpan(
                    job=job,
                    figure=event.get("figure", "?"),
                    attempt=event.get("attempt", 1),
                    start=ts,
                    end=ts,  # patched by the matching attempt_end
                    outcome="running",
                    worker=event.get("worker"),
                    span=event.get("span"),
                )
            )
        elif kind == "attempt_end":
            job = int(event["job"])
            open_span = next(
                (
                    a
                    for a in reversed(tl.attempts)
                    if a.job == job and a.outcome == "running"
                ),
                None,
            )
            if open_span is None:
                wall = float(event.get("wall_s", 0.0))
                open_span = AttemptSpan(
                    job=job,
                    figure=event.get("figure", "?"),
                    attempt=event.get("attempt", 1),
                    start=ts - wall,
                    end=ts,
                    outcome="?",
                    span=event.get("span"),
                )
                tl.attempts.append(open_span)
            open_span.end = ts
            open_span.outcome = event.get("outcome", "?")
            open_span.pid = event.get("pid")
        elif kind == "checkpoint":
            dur = float(event.get("dur_s", 0.0))
            tl.checkpoints.append((ts - dur, ts))
        elif kind == "worker_spawn":
            tl.worker_tracks[event.get("worker", 0)] = WorkerTrack(
                worker=event.get("worker", 0),
                pid=event.get("pid"),
                spawned=ts,
            )
        elif kind == "worker_ready":
            track = tl.worker_tracks.setdefault(
                event.get("worker", 0),
                WorkerTrack(worker=event.get("worker", 0)),
            )
            track.ready = ts
        elif kind == "worker_dead":
            track = tl.worker_tracks.setdefault(
                event.get("worker", 0),
                WorkerTrack(worker=event.get("worker", 0)),
            )
            track.died = ts
        elif kind == "sweep_end":
            tl.t1 = ts
            tl.backend = event.get("backend")
            tl.ok = event.get("ok", 0)
            tl.failed = event.get("failed", 0)
            tl.cached = event.get("cached", 0)
            saw_end = True
    if not saw_end:
        tl.t1 = last_ts  # interrupted sweep: report what happened so far
    for attempt in tl.attempts:
        if attempt.outcome == "running":  # open at interruption
            attempt.end = tl.t1
            attempt.outcome = "unfinished"
    return tl


def assign_lanes(tl: SweepTimeline) -> list[int]:
    """One lane per attempt (parallel to ``tl.attempts``).

    Attempts carrying a worker id (the subprocess backend) map onto that
    worker's lane; the rest (local pool, serial) are packed greedily onto
    virtual slot lanes by start time — the classic interval-partitioning
    assignment, deterministic given the event stream.
    """
    worker_lane: dict[int, int] = {}
    for worker in sorted(tl.worker_tracks):
        worker_lane.setdefault(worker, len(worker_lane))
    for attempt in tl.attempts:
        if attempt.worker is not None:
            worker_lane.setdefault(attempt.worker, len(worker_lane))
    lanes = [0] * len(tl.attempts)
    greedy_base = len(worker_lane)
    greedy_busy_until: list[float] = []
    order = sorted(
        range(len(tl.attempts)),
        key=lambda i: (tl.attempts[i].start, tl.attempts[i].end, i),
    )
    for i in order:
        attempt = tl.attempts[i]
        if attempt.worker is not None:
            lanes[i] = worker_lane[attempt.worker]
            continue
        for lane, busy_until in enumerate(greedy_busy_until):
            if busy_until <= attempt.start + _EPS:
                greedy_busy_until[lane] = attempt.end
                lanes[i] = greedy_base + lane
                break
        else:
            greedy_busy_until.append(attempt.end)
            lanes[i] = greedy_base + len(greedy_busy_until) - 1
    return lanes


# -- critical path ----------------------------------------------------------


@dataclass
class Segment:
    """One critical-path interval; segments tile ``[t0, t1]`` exactly."""

    kind: str  # one of PHASES
    start: float
    end: float
    detail: str = ""

    @property
    def dur(self) -> float:
        return max(self.end - self.start, 0.0)


def _gap_marks(
    tl: SweepTimeline, a: float, b: float
) -> list[tuple[float, float, str, str]]:
    """Checkpoint / spawn windows overlapping ``[a, b]``, clipped."""
    marks: list[tuple[float, float, str, str]] = []
    for start, end in tl.checkpoints:
        s, e = max(start, a), min(end, b)
        if e > s + _EPS:
            marks.append((s, e, "checkpoint", "manifest checkpoint"))
    for track in tl.worker_tracks.values():
        if track.spawned is None or track.ready is None:
            continue
        s, e = max(track.spawned, a), min(track.ready, b)
        if e > s + _EPS:
            marks.append((s, e, "spawn", f"spawn worker {track.worker}"))
    marks.sort(key=lambda m: (m[0], m[1]))
    return marks


def _classify_gap(
    tl: SweepTimeline, a: float, b: float, default: str, detail: str
) -> list[Segment]:
    """Tile ``[a, b]`` with checkpoint/spawn windows + ``default`` fill."""
    a, b = max(a, tl.t0), min(b, tl.t1)
    if b <= a + _EPS:
        return []
    out: list[Segment] = []
    cursor = a
    for start, end, kind, mark_detail in _gap_marks(tl, a, b):
        start = max(start, cursor)
        end = min(end, b)
        if end <= start + _EPS:
            continue
        if start > cursor + _EPS:
            out.append(Segment(default, cursor, start, detail))
        out.append(Segment(kind, start, end, mark_detail))
        cursor = end
    if b > cursor + _EPS:
        out.append(Segment(default, cursor, b, detail))
    return out


def critical_path(tl: SweepTimeline) -> list[Segment]:
    """The chain of segments that determined the sweep's wall time.

    Walks backwards from the last attempt to finish: its compute interval
    is on the critical path; the gap before it is explained by (in
    preference order) the previous attempt of the same job (a retry
    backoff), the previous attempt on the same execution lane (the slot
    was busy — the path continues through that attempt), or the job's
    queue wait since submission.  Checkpoint writes and worker
    spawn→ready windows overlapping a gap are carved out and attributed
    to their own phases.  The returned segments tile ``[t0, t1]`` with
    no gaps or overlaps, so the phase breakdown sums to the sweep's wall
    time exactly.
    """
    if tl.t1 <= tl.t0 + _EPS:
        return []
    if not tl.attempts:
        detail = (
            "served from cache" if tl.cache_hits else "no attempts recorded"
        )
        return _classify_gap(tl, tl.t0, tl.t1, "idle", detail)
    lanes = assign_lanes(tl)
    lane_of = {id(a): lane for a, lane in zip(tl.attempts, lanes)}
    segments: list[Segment] = []  # built back-to-front, reversed at the end

    def extend_gap(a: float, b: float, default: str, detail: str) -> None:
        segments.extend(reversed(_classify_gap(tl, a, b, default, detail)))

    cur = max(tl.attempts, key=lambda a: (a.end, a.start))
    cursor = tl.t1
    if cursor > cur.end + _EPS:
        extend_gap(cur.end, cursor, "idle", "sweep finalize")
        cursor = cur.end
    visited = {id(cur)}
    while True:
        seg_end = min(cur.end, cursor)
        seg_start = max(min(cur.start, seg_end), tl.t0)
        if seg_end > seg_start + _EPS:
            label = f"{tl.job_label(cur.job)} attempt {cur.attempt}"
            if cur.outcome not in ("ok", "running"):
                label += f" ({cur.outcome})"
            segments.append(Segment("compute", seg_start, seg_end, label))
        cursor = seg_start
        if cursor <= tl.t0 + _EPS:
            break
        predecessors = [
            a
            for a in tl.attempts
            if id(a) not in visited
            and a.end <= cursor + _EPS
            and (a.job == cur.job or lane_of[id(a)] == lane_of[id(cur)])
        ]
        if predecessors:
            pred = max(predecessors, key=lambda a: (a.end, a.job == cur.job))
            if pred.job == cur.job:
                extend_gap(
                    pred.end, cursor, "retry",
                    f"retry backoff before {tl.job_label(cur.job)} "
                    f"attempt {cur.attempt}",
                )
            else:
                extend_gap(
                    pred.end, cursor, "idle",
                    f"lane idle before {tl.job_label(cur.job)}",
                )
            cursor = min(pred.end, cursor)
            cur = pred
            visited.add(id(cur))
            continue
        # First attempt on this chain: queue wait back to submission,
        # then whatever the engine was doing before (cache service,
        # startup) back to t0.
        track = tl.jobs.get(cur.job)
        submitted = (
            track.submitted
            if track is not None and track.submitted is not None
            else tl.t0
        )
        submitted = min(max(submitted, tl.t0), cursor)
        extend_gap(
            submitted, cursor, "queue",
            f"{tl.job_label(cur.job)} waiting for dispatch",
        )
        extend_gap(tl.t0, submitted, "idle", "sweep startup")
        break
    segments.reverse()
    return segments


def phase_breakdown(segments: list[Segment]) -> dict[str, float]:
    """Seconds per phase, every :data:`PHASES` key present."""
    totals = {phase: 0.0 for phase in PHASES}
    for segment in segments:
        totals[segment.kind] = totals.get(segment.kind, 0.0) + segment.dur
    return totals


# -- rendering --------------------------------------------------------------


def _lane_names(tl: SweepTimeline, lanes: list[int]) -> dict[int, str]:
    names: dict[int, str] = {}
    worker_by_lane: dict[int, int] = {}
    worker_lane: dict[int, int] = {}
    for worker in sorted(tl.worker_tracks):
        worker_lane.setdefault(worker, len(worker_lane))
    for attempt, lane in zip(tl.attempts, lanes):
        if attempt.worker is not None:
            worker_by_lane.setdefault(lane, attempt.worker)
    for worker, lane in worker_lane.items():
        worker_by_lane.setdefault(lane, worker)
    for lane in set(lanes) | set(worker_by_lane):
        if lane in worker_by_lane:
            worker = worker_by_lane[lane]
            track = tl.worker_tracks.get(worker)
            pid = f" pid {track.pid}" if track and track.pid else ""
            names[lane] = f"worker {worker}{pid}"
        else:
            names[lane] = f"slot {lane}"
    return names


def format_timeline(
    tl: SweepTimeline,
    segments: list[Segment] | None = None,
    width: int = 60,
    max_segments: int = 24,
) -> str:
    """Terminal Gantt summary + phase table + critical-path listing."""
    if segments is None:
        segments = critical_path(tl)
    lines = [
        f"Sweep timeline — trace {tl.trace or '?'}",
        f"  jobs: {tl.total} · workers: {tl.workers}"
        + (f" · backend: {tl.backend}" if tl.backend else "")
        + f" · wall: {tl.wall_s:.2f}s",
        f"  ok: {tl.ok} · failed: {tl.failed} · cached: {tl.cached}",
        "",
    ]
    lanes = assign_lanes(tl)
    span = max(tl.wall_s, _EPS)
    if tl.attempts:
        names = _lane_names(tl, lanes)
        lines.append("Lanes ('#' compute, 'x' failed attempt, '+' spawn):")
        label_w = max(len(n) for n in names.values())
        for lane in sorted(names):
            cells = ["."] * width
            for track in tl.worker_tracks.values():
                if names.get(lane, "").startswith(f"worker {track.worker}"):
                    if track.spawned is not None and track.ready is not None:
                        lo = int((track.spawned - tl.t0) / span * width)
                        hi = int((track.ready - tl.t0) / span * width)
                        for c in range(max(lo, 0), min(hi + 1, width)):
                            cells[c] = "+"
            for attempt, lane_i in zip(tl.attempts, lanes):
                if lane_i != lane:
                    continue
                mark = "#" if attempt.outcome in ("ok", "running") else "x"
                lo = int((attempt.start - tl.t0) / span * width)
                hi = int((attempt.end - tl.t0) / span * width)
                for c in range(max(lo, 0), min(max(hi, lo + 1), width)):
                    cells[c] = mark
            lines.append(
                f"  {names[lane]:<{label_w}} |{''.join(cells)}|"
            )
        lines.append("")
    phases = phase_breakdown(segments)
    total = sum(phases.values())
    lines.append("Where the time went (critical path):")
    for phase in PHASES:
        seconds = phases[phase]
        if seconds <= 0 and phase != "compute":
            continue
        share = (seconds / total * 100) if total else 0.0
        lines.append(f"  {phase:<11} {seconds:>8.3f}s  {share:5.1f}%")
    lines.append(f"  {'total':<11} {total:>8.3f}s")
    lines.append("")
    lines.append(f"Critical path ({len(segments)} segment(s)):")
    shown = segments[:max_segments]
    for segment in shown:
        lines.append(
            f"  +{segment.start - tl.t0:8.3f}s {segment.dur:8.3f}s  "
            f"{segment.kind:<11} {segment.detail}"
        )
    if len(segments) > len(shown):
        lines.append(f"  … {len(segments) - len(shown)} more")
    return "\n".join(lines)


# -- Chrome-trace merger ----------------------------------------------------


def _locate(path_text: str, base: Path) -> Path | None:
    # trace_path is recorded exactly as --trace-out was given, so a
    # relative path is relative to the *sweep's* cwd, not the run dir.
    # Try the run dir first (self-contained layouts), then the path
    # as-is, then a --trace-out sibling of the run dir, then a bare
    # file dropped next to the manifest.
    recorded = Path(path_text)
    candidates = (
        (recorded,)
        if recorded.is_absolute()
        else (base / recorded, recorded, base.parent / recorded,
              base / recorded.name)
    )
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return None


def merge_chrome(
    tl: SweepTimeline,
    run_dir: Path | str | None = None,
    manifest: Any = None,
) -> dict[str, Any]:
    """One cross-process Chrome trace: engine control plane + one track
    per backend slot/worker + the per-job child traces, on a shared
    wall-clock timeline.

    Child trace files (``trace_path`` on each manifest record, written
    when the sweep ran with ``--trace-out``) are shifted onto the
    engine's timeline via the ``epoch_unix`` stamp their tracer records;
    traces predating that stamp are aligned to the job's attempt start.
    Their ``runner.job`` spans carry the same span id as the engine's
    attempt events (``args.span``), which is the cross-process
    correlation the timeline is for.
    """
    us = lambda t: round(max(t - tl.t0, 0.0) * 1e6, 3)  # noqa: E731
    events: list[dict[str, Any]] = []

    def meta(pid: int, name: str, sort_index: int) -> None:
        events.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "ts": 0, "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "ts": 0, "args": {"sort_index": sort_index},
            }
        )

    meta(0, "sweep control plane", 0)
    for job, track in sorted(tl.jobs.items()):
        if track.cached:
            continue
        ends = [a.end for a in tl.attempts if a.job == job]
        start = track.submitted if track.submitted is not None else tl.t0
        end = max(ends) if ends else tl.t1
        events.append(
            {
                "ph": "X", "name": f"job {tl.job_label(job)}",
                "pid": 0, "tid": 0,
                "ts": us(start), "dur": round(max(end - start, 0) * 1e6, 3),
                "args": {"span": track.span, "job": job, "key": track.key},
            }
        )
    for job, start, end in tl.cache_hits:
        events.append(
            {
                "ph": "X", "name": f"cache hit {tl.job_label(job)}",
                "pid": 0, "tid": 1,
                "ts": us(start), "dur": round(max(end - start, 0) * 1e6, 3),
                "args": {"job": job},
            }
        )
    for start, end in tl.checkpoints:
        events.append(
            {
                "ph": "X", "name": "checkpoint", "pid": 0, "tid": 1,
                "ts": us(start), "dur": round(max(end - start, 0) * 1e6, 3),
                "args": {},
            }
        )

    lanes = assign_lanes(tl)
    names = _lane_names(tl, lanes)
    for lane, name in sorted(names.items()):
        meta(1000 + lane, f"lane {lane} ({name})", 10 + lane)
    for attempt, lane in zip(tl.attempts, lanes):
        events.append(
            {
                "ph": "X",
                "name": (
                    f"{tl.job_label(attempt.job)} #{attempt.attempt}"
                ),
                "pid": 1000 + lane, "tid": 0,
                "ts": us(attempt.start),
                "dur": round(attempt.dur * 1e6, 3),
                "args": {
                    "span": attempt.span,
                    "outcome": attempt.outcome,
                    "attempt": attempt.attempt,
                    "worker_pid": attempt.pid,
                },
            }
        )
    for track in tl.worker_tracks.values():
        lane = next(
            (
                l
                for l, n in names.items()
                if n.startswith(f"worker {track.worker}")
            ),
            None,
        )
        if lane is None or track.spawned is None:
            continue
        ready = track.ready if track.ready is not None else track.spawned
        events.append(
            {
                "ph": "X", "name": f"spawn worker {track.worker}",
                "pid": 1000 + lane, "tid": 0,
                "ts": us(track.spawned),
                "dur": round(max(ready - track.spawned, 0) * 1e6, 3),
                "args": {"pid": track.pid},
            }
        )

    # Child-side traces, when the sweep also ran with --trace-out.
    if manifest is None and run_dir is not None:
        manifest_path = Path(run_dir) / "manifest.json"
        if manifest_path.exists():
            from ..runner.manifest import RunManifest

            try:
                manifest = RunManifest.load(manifest_path)
            except (OSError, ValueError):
                manifest = None
    if manifest is not None and run_dir is not None:
        base = Path(run_dir)
        by_key = {
            track.key: job for job, track in tl.jobs.items() if track.key
        }
        lane_by_job: dict[int, int] = {}
        for attempt, lane in zip(tl.attempts, lanes):
            lane_by_job[attempt.job] = lane
        for record in manifest.records:
            if not record.trace_path or record.key not in by_key:
                continue
            trace_file = _locate(record.trace_path, base)
            if trace_file is None:
                continue
            try:
                payload = json.loads(trace_file.read_text())
            except (OSError, ValueError):
                continue
            job = by_key[record.key]
            lane = lane_by_job.get(job)
            if lane is None:
                continue
            epoch = (payload.get("otherData") or {}).get("epoch_unix")
            if epoch is not None:
                shift_us = (epoch - tl.t0) * 1e6
            else:
                ok_attempts = [
                    a for a in tl.attempts
                    if a.job == job and a.outcome == "ok"
                ]
                anchor = (
                    ok_attempts[-1].start if ok_attempts else tl.t0
                )
                shift_us = (anchor - tl.t0) * 1e6
            from .tracing import SIM_TRACK

            for event in payload.get("traceEvents", []):
                if event.get("ph") == "M" or event.get("tid") == SIM_TRACK:
                    continue
                merged = dict(event)
                merged["pid"] = 1000 + lane
                merged["tid"] = 1
                merged["ts"] = round(event.get("ts", 0) + shift_us, 3)
                events.append(merged)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SWEEPTRACE_SCHEMA, "trace": tl.trace},
    }


def write_merged_chrome(
    events_path: Path | str, out: Path | str
) -> int:
    """Build and write the merged Chrome trace; returns the event count.

    ``events_path`` may be the events file or the run directory; the
    manifest (for child trace paths) is looked up next to it.
    """
    events_file = resolve_events_path(events_path)
    tl = build_timeline(load_events(events_file))
    merged = merge_chrome(tl, run_dir=events_file.parent)
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(merged))
    return len(merged["traceEvents"])

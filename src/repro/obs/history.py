"""Append-only benchmark history with statistical regression detection.

Each ``repro bench record`` run produces one :class:`BenchReport` — a set
of named wall-time samples measured by the ``benchmarks/`` pytest hook —
written both as a standalone ``BENCH_<date>.json`` file and as one line
appended to the history store (``history.jsonl`` under the history
directory).  The JSON schema (``repro.obs/bench/v1``)::

    {
      "schema": "repro.obs/bench/v1",
      "version": "1.5.0",             // repro package version
      "id": "f3a8c1d20b44",           // content hash; unique per report
      "recorded_at": "2026-08-06T12:00:00",
      "meta": {"python": "3.11.7"},   // free-form environment notes
      "samples": [
        {
          "name": "test_bench_fig5_switchover.py::test_recovers",
          "value_s": 1.284,           // measured wall time (call phase)
          "unit": "s",
          "rounds": 1
        }
      ]
    }

**Regression rule** (:func:`detect_regressions`): for every sample, the
baseline is the *median* of that benchmark's last ``window`` historical
values, and the allowed noise band is the widest of

- ``mad_factor`` × the MAD-derived robust standard deviation
  (``1.4826 × median(|x - baseline|)``),
- ``min_rel`` × baseline (relative slack for quiet histories), and
- ``min_abs_s`` (absolute slack so microsecond benches never flap).

A current value above ``baseline + band`` is a **regression**; below
``baseline - band`` it is flagged ``improved`` (informational).  Medians
and MAD make the rule robust to the occasional noisy CI run that would
wreck a mean/stddev band.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from .. import __version__

BENCH_SCHEMA = "repro.obs/bench/v1"

#: File name of the append-only JSONL store inside a history directory.
HISTORY_FILENAME = "history.jsonl"

#: Default number of historical entries the baseline median spans.
DEFAULT_WINDOW = 8


def median(values: list[float]) -> float:
    """Median without :mod:`statistics` import cost on the hot path."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_std(values: list[float], center: float) -> float:
    """MAD-scaled standard deviation estimate around ``center``."""
    if not values:
        return 0.0
    return 1.4826 * median([abs(v - center) for v in values])


@dataclass(frozen=True)
class BenchSample:
    """One named measurement inside a report."""

    name: str
    value_s: float
    unit: str = "s"
    rounds: int = 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value_s": self.value_s,
            "unit": self.unit,
            "rounds": self.rounds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BenchSample":
        return cls(
            name=payload["name"],
            value_s=float(payload["value_s"]),
            unit=payload.get("unit", "s"),
            rounds=int(payload.get("rounds", 1)),
        )


@dataclass
class BenchReport:
    """One recording session: named samples plus provenance."""

    recorded_at: str
    samples: list[BenchSample] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    id: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            digest = hashlib.sha256(
                json.dumps(
                    [self.recorded_at]
                    + [s.as_dict() for s in self.samples],
                    sort_keys=True,
                ).encode("utf-8")
            )
            self.id = digest.hexdigest()[:12]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "version": __version__,
            "id": self.id,
            "recorded_at": self.recorded_at,
            "meta": self.meta,
            "samples": [sample.as_dict() for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BenchReport":
        schema = payload.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported bench schema {schema!r}; expected {BENCH_SCHEMA}"
            )
        return cls(
            recorded_at=payload.get("recorded_at", ""),
            samples=[
                BenchSample.from_dict(s) for s in payload.get("samples", [])
            ],
            meta=dict(payload.get("meta") or {}),
            id=payload.get("id", ""),
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Path | str) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


class BenchHistory:
    """The append-only JSONL store of :class:`BenchReport` entries."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / HISTORY_FILENAME

    def append(self, report: BenchReport) -> Path:
        """Append one report as a single JSONL line."""
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(report.as_dict()) + "\n")
        return self.path

    def reports(self) -> list[BenchReport]:
        """Every stored report, oldest first; malformed lines are skipped."""
        if not self.path.exists():
            return []
        out: list[BenchReport] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(BenchReport.from_dict(json.loads(line)))
            except (ValueError, KeyError):
                continue  # a torn append must not poison the whole store
        return out

    def series(
        self, name: str, exclude_id: str | None = None
    ) -> list[float]:
        """Historical values of benchmark ``name``, oldest first."""
        values: list[float] = []
        for report in self.reports():
            if exclude_id is not None and report.id == exclude_id:
                continue
            for sample in report.samples:
                if sample.name == name:
                    values.append(sample.value_s)
        return values


#: Verdicts :func:`detect_regressions` can assign to one sample.
STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_NEW = "new"


@dataclass(frozen=True)
class RegressionFinding:
    """One sample judged against its historical baseline."""

    name: str
    status: str
    current_s: float
    baseline_s: float | None = None
    band_s: float | None = None

    @property
    def ratio(self) -> float | None:
        """current / baseline, when a baseline exists and is nonzero."""
        if not self.baseline_s:
            return None
        return self.current_s / self.baseline_s


def detect_regressions(
    history: BenchHistory,
    report: BenchReport,
    window: int = DEFAULT_WINDOW,
    mad_factor: float = 4.0,
    min_rel: float = 0.10,
    min_abs_s: float = 0.002,
) -> list[RegressionFinding]:
    """Judge every sample of ``report`` against ``history``.

    The report's own history entry (matched by ``id``) is excluded, so
    ``record`` followed by ``compare`` never compares a run to itself.
    """
    findings: list[RegressionFinding] = []
    for sample in report.samples:
        values = history.series(sample.name, exclude_id=report.id)
        if not values:
            findings.append(
                RegressionFinding(
                    name=sample.name,
                    status=STATUS_NEW,
                    current_s=sample.value_s,
                )
            )
            continue
        recent = values[-window:]
        baseline = median(recent)
        band = max(
            mad_factor * robust_std(recent, baseline),
            min_rel * baseline,
            min_abs_s,
        )
        if sample.value_s > baseline + band:
            status = STATUS_REGRESSION
        elif sample.value_s < baseline - band:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        findings.append(
            RegressionFinding(
                name=sample.name,
                status=status,
                current_s=sample.value_s,
                baseline_s=baseline,
                band_s=band,
            )
        )
    return findings


def format_findings(findings: Iterable[RegressionFinding]) -> str:
    """Aligned text table of regression findings."""
    rows = [["benchmark", "status", "current", "baseline", "band", "ratio"]]
    for f in findings:
        rows.append(
            [
                f.name,
                f.status.upper() if f.status == STATUS_REGRESSION else f.status,
                f"{f.current_s:.4f}s",
                f"{f.baseline_s:.4f}s" if f.baseline_s is not None else "-",
                f"±{f.band_s:.4f}s" if f.band_s is not None else "-",
                f"{f.ratio:.2f}x" if f.ratio is not None else "-",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)

"""In-band telemetry for the *simulated* network.

The rest of ``repro.obs`` watches the harness — jobs, traces, bench
history.  This module watches the fabric itself, with three instruments
modeled on data-center streaming telemetry practice (the paper's thesis
applied to our own simulator):

- **Time-series samplers** — fixed-capacity ring buffers
  (:class:`RingSampler`) recording per-port tx busy time, per-link bytes,
  and per-queue depth broken down by PCP class.  On overflow a sampler
  *decimates deterministically*: it drops every other retained sample and
  doubles its admission stride, so memory stays bounded while the series
  keeps covering the whole run at progressively coarser resolution.
- **INT-style postcards** — a seeded 1-in-N packet sampler.  Sampled
  packets accumulate one record per hop (ingress/egress sim-time, queue
  depth seen, per-hop latency) and emit a *postcard* when delivered,
  giving per-flow path attribution that composes with
  :class:`~repro.net.trace.PacketTracer` (see
  :func:`repro.net.trace.postcard_trace_records`).
- **A flight recorder** — a per-component ring of recent packet/state
  events (drops, link transitions), snapshotted automatically when a
  chaos fault fires or a figure verdict fails, so a failed requirement
  comes with the fabric's last moments attached.

Activation follows the ``obs.capture()`` null-object pattern: components
ask :func:`repro.obs.get_telemetry` for the active
:class:`TelemetryHub` *at construction time* and keep ``None`` when
telemetry is off, so the hot path pays one attribute load and an
``is not None`` test — ``Simulator._run_fast`` is untouched.

Determinism contract: the hub never draws from simulation RNG streams
and never schedules events.  The sampling decision is a pure
``blake2s`` hash of ``(seed, src, dst, flow, sequence, created_ns)``,
and every serialized artifact (``.telemetry.json`` snapshots,
``.postcards.jsonl`` sinks, schema ``repro.obs/telemetry/v1``) is
byte-stable across repeated runs for a fixed seed.
"""

from __future__ import annotations

import json
from hashlib import blake2s
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.host import Host
    from ..net.link import Link, Port
    from ..net.packet import Packet
    from ..net.switch import Switch

TELEMETRY_SCHEMA = "repro.obs/telemetry/v1"

#: Hop records kept per sampled packet; routing loops cannot grow a
#: draft without bound.
_MAX_HOPS = 64


def _series_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class RingSampler:
    """A bounded time series with deterministic decimation-on-overflow.

    Admission is stride-based: only every ``stride``-th observation is
    retained.  When the ring fills, every other retained sample is
    dropped and the stride doubles, so the ``capacity`` samples always
    span the full observation history at uniform (if coarsening)
    resolution.  Pure function of the observation sequence — no clocks,
    no randomness.
    """

    __slots__ = (
        "name", "labels", "capacity", "stride", "observed",
        "decimations", "samples",
    )

    def __init__(
        self, name: str, capacity: int = 256, labels: dict[str, Any] | None = None
    ) -> None:
        if capacity < 2 or capacity % 2:
            raise ValueError("sampler capacity must be an even number >= 2")
        self.name = name
        self.labels = dict(labels or {})
        self.capacity = capacity
        self.stride = 1
        self.observed = 0
        self.decimations = 0
        self.samples: list[tuple[int, int | float]] = []

    def record(self, t_ns: int, value: int | float) -> None:
        """Observe ``value`` at sim-time ``t_ns`` (may be decimated away)."""
        index = self.observed
        self.observed = index + 1
        if index % self.stride:
            return
        samples = self.samples
        if len(samples) >= self.capacity:
            # Keep even positions: retained indices stay multiples of the
            # doubled stride, so admission and retention agree.
            del samples[1::2]
            self.stride *= 2
            self.decimations += 1
            if index % self.stride:
                return
        samples.append((t_ns, value))

    @property
    def last(self) -> tuple[int, int | float] | None:
        return self.samples[-1] if self.samples else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": {k: self.labels[k] for k in sorted(self.labels)},
            "capacity": self.capacity,
            "stride": self.stride,
            "observed": self.observed,
            "decimations": self.decimations,
            "samples": [[t, v] for t, v in self.samples],
        }


class FlightRecorder:
    """Per-component rings of recent events, snapshotted on demand.

    ``note`` appends to a bounded per-component ring (oldest events fall
    off).  ``snapshot`` freezes every ring under a trigger label — the
    chaos engine snapshots when a fault fires, the runner when a figure
    verdict fails.
    """

    def __init__(self, capacity: int = 64, max_snapshots: int = 32) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.max_snapshots = max_snapshots
        self._rings: dict[str, list[dict[str, Any]]] = {}
        self.snapshots: list[dict[str, Any]] = []
        self.dropped_snapshots = 0
        self.events = 0

    def note(self, component: str, t_ns: int, kind: str, **detail: Any) -> None:
        """Record one event on ``component``'s ring."""
        ring = self._rings.get(component)
        if ring is None:
            ring = self._rings[component] = []
        event = {"t_ns": t_ns, "kind": kind}
        if detail:
            event.update(detail)
        ring.append(event)
        if len(ring) > self.capacity:
            del ring[0]
        self.events += 1

    def snapshot(self, trigger: str, t_ns: int | None = None) -> dict | None:
        """Freeze all rings under ``trigger``; returns the snapshot dict."""
        if len(self.snapshots) >= self.max_snapshots:
            self.dropped_snapshots += 1
            return None
        frozen = {
            "trigger": trigger,
            "t_ns": t_ns,
            "components": {
                name: [dict(event) for event in self._rings[name]]
                for name in sorted(self._rings)
            },
        }
        self.snapshots.append(frozen)
        return frozen

    def as_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "events": self.events,
            "dropped_snapshots": self.dropped_snapshots,
            "snapshots": [dict(s) for s in self.snapshots],
        }


class PortProbe:
    """Telemetry hook points for one :class:`~repro.net.link.Port`."""

    __slots__ = (
        "hub", "port", "busy_ns", "tx_bytes",
        "_busy_ring", "_bytes_ring", "_depth_ring", "_pcp_rings",
        "_class_depth",
    )

    def __init__(self, hub: "TelemetryHub", port: "Port") -> None:
        self.hub = hub
        self.port = port
        self.busy_ns = 0
        self.tx_bytes = 0
        name = port.name
        self._busy_ring = hub.sampler("net.port.busy_ns", port=name)
        self._bytes_ring = hub.sampler("net.link.tx_bytes", port=name)
        self._depth_ring = hub.sampler("net.queue.depth", port=name)
        self._pcp_rings: dict[int, RingSampler] = {}
        self._class_depth = getattr(port.queue, "class_depth", None)

    def on_enqueue(self, packet: "Packet") -> None:
        """Sample queue depth (total and for the packet's PCP class)."""
        port = self.port
        now = port.sim.now
        self._depth_ring.record(now, len(port.queue))
        pcp = packet.pcp
        ring = self._pcp_rings.get(pcp)
        if ring is None:
            ring = self.hub.sampler(
                "net.queue.depth", port=port.name, pcp=pcp
            )
            self._pcp_rings[pcp] = ring
        if self._class_depth is not None:
            ring.record(now, self._class_depth(pcp))
        else:
            ring.record(now, len(port.queue))

    def on_drop(self, packet: "Packet") -> None:
        """Egress drop: a flight-recorder event on this port."""
        self.hub.flight.note(
            self.port.name, self.port.sim.now, "queue.drop",
            pcp=packet.pcp, flow=packet.flow_id,
        )

    def on_transmit(self, packet: "Packet", tx_ns: int) -> None:
        """Serialization started: accumulate busy time, stamp INT egress."""
        port = self.port
        now = port.sim.now
        self.busy_ns += tx_ns
        self.tx_bytes += packet.wire_size_bytes
        self._busy_ring.record(now, self.busy_ns)
        self._bytes_ring.record(now, self.tx_bytes)
        self.hub.stamp_egress(packet, port.name, now, len(port.queue))


class SwitchProbe:
    """INT ingress stamping for one switch."""

    __slots__ = ("hub", "switch")

    def __init__(self, hub: "TelemetryHub", switch: "Switch") -> None:
        self.hub = hub
        self.switch = switch

    def on_ingress(self, packet: "Packet") -> None:
        self.hub.stamp_ingress(packet, self.switch.name, self.switch.sim.now)


class HostProbe:
    """Postcard begin/finish hooks for one host."""

    __slots__ = ("hub", "host")

    def __init__(self, hub: "TelemetryHub", host: "Host") -> None:
        self.hub = hub
        self.host = host

    def on_send(self, packet: "Packet") -> None:
        hub = self.hub
        if hub.sampled(packet):
            hub.begin_postcard(packet, self.host.sim.now)

    def on_deliver(self, packet: "Packet") -> None:
        self.hub.finish_postcard(packet, self.host.name, self.host.sim.now)


class LinkProbe:
    """Flight-recorder events for link state transitions."""

    __slots__ = ("hub", "link")

    def __init__(self, hub: "TelemetryHub", link: "Link") -> None:
        self.hub = hub
        self.link = link

    def on_state(self, up: bool) -> None:
        link = self.link
        self.hub.flight.note(
            link.name, link.sim.now, "link.up" if up else "link.down"
        )


class ShaperProbe:
    """Cumulative TSN shaper block counts as time series."""

    __slots__ = ("_guard_ring", "_gate_ring", "guard_blocks", "gate_blocks")

    def __init__(self, hub: "TelemetryHub", name: str) -> None:
        self.guard_blocks = 0
        self.gate_blocks = 0
        self._guard_ring = hub.sampler(
            "tsn.shaper.blocks", shaper=name, reason="guard_band"
        )
        self._gate_ring = hub.sampler(
            "tsn.shaper.blocks", shaper=name, reason="gate_closed"
        )

    def on_guard_band(self, now_ns: int) -> None:
        self.guard_blocks += 1
        self._guard_ring.record(now_ns, self.guard_blocks)

    def on_gate_closed(self, now_ns: int) -> None:
        self.gate_blocks += 1
        self._gate_ring.record(now_ns, self.gate_blocks)


class TelemetryHub:
    """The active telemetry plane: samplers + postcards + flight recorder.

    Install one with ``obs.capture(telemetry=TelemetryHub(...))`` (or
    ``telemetry=True`` for defaults) *before* building the network —
    components resolve their probes at construction time.
    """

    enabled = True

    def __init__(
        self,
        *,
        interval: int = 64,
        seed: int = 0,
        ring_capacity: int = 256,
        flight_capacity: int = 64,
        max_postcards: int = 100_000,
        max_inflight: int = 4096,
    ) -> None:
        if interval < 1:
            raise ValueError("postcard interval must be >= 1")
        self.interval = interval
        self.seed = seed
        self.ring_capacity = ring_capacity
        self.max_postcards = max_postcards
        self.max_inflight = max_inflight
        self.samplers: dict[str, RingSampler] = {}
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.postcards: list[dict[str, Any]] = []
        self.postcards_dropped = 0
        self.packets_sampled = 0
        self.inflight_evicted = 0
        #: id(packet) -> postcard draft for sampled packets in flight.
        self._inflight: dict[int, dict[str, Any]] = {}
        self._shaper_count = 0

    # -- samplers ------------------------------------------------------------

    def sampler(self, name: str, **labels: Any) -> RingSampler:
        """Get or create the ring sampler for ``name`` + ``labels``."""
        key = _series_key(name, labels)
        ring = self.samplers.get(key)
        if ring is None:
            ring = RingSampler(name, capacity=self.ring_capacity, labels=labels)
            self.samplers[key] = ring
        return ring

    # -- probe factories (null hub returns None for each) --------------------

    def port_probe(self, port: "Port") -> PortProbe:
        return PortProbe(self, port)

    def switch_probe(self, switch: "Switch") -> SwitchProbe:
        return SwitchProbe(self, switch)

    def host_probe(self, host: "Host") -> HostProbe:
        return HostProbe(self, host)

    def link_probe(self, link: "Link") -> LinkProbe:
        return LinkProbe(self, link)

    def shaper_probe(self) -> ShaperProbe:
        # Shapers carry no identity; assign them construction-order names.
        name = f"shaper{self._shaper_count}"
        self._shaper_count += 1
        return ShaperProbe(self, name)

    # -- INT postcards -------------------------------------------------------

    def sampled(self, packet: "Packet") -> bool:
        """The deterministic 1-in-N decision for one packet.

        A pure hash of stable packet identity — never the sim RNG (which
        would perturb the workload) and never ``packet_id`` (a
        process-global counter that differs between runs).
        """
        interval = self.interval
        if interval <= 1:
            return True
        key = "%d|%s|%s|%s|%d|%d" % (
            self.seed, packet.src, packet.dst, packet.flow_id,
            packet.sequence, packet.created_ns,
        )
        digest = blake2s(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % interval == 0

    def begin_postcard(self, packet: "Packet", now_ns: int) -> None:
        """Start accumulating hop records for a sampled packet."""
        inflight = self._inflight
        if len(inflight) >= self.max_inflight:
            # Evict the oldest draft (dict preserves insertion order);
            # lost/undelivered packets must not pin memory forever.
            inflight.pop(next(iter(inflight)))
            self.inflight_evicted += 1
        self.packets_sampled += 1
        inflight[id(packet)] = {
            "_pid": packet.packet_id,
            "_in": now_ns,
            "_in_dev": packet.src,
            "flow": packet.flow_id,
            "src": packet.src,
            "dst": packet.dst,
            "seq": packet.sequence,
            "tc": packet.traffic_class.name,
            "payload_bytes": packet.payload_bytes,
            "sent_ns": now_ns,
            "hops": [],
        }

    def _draft(self, packet: "Packet") -> dict[str, Any] | None:
        draft = self._inflight.get(id(packet))
        if draft is None:
            return None
        if draft["_pid"] != packet.packet_id:
            # The packet object was pooled and recycled while its old
            # draft still lingered; the draft is stale.
            del self._inflight[id(packet)]
            return None
        return draft

    def stamp_ingress(
        self, packet: "Packet", device: str, now_ns: int
    ) -> None:
        draft = self._draft(packet)
        if draft is None:
            return
        draft["_in"] = now_ns
        draft["_in_dev"] = device

    def stamp_egress(
        self, packet: "Packet", port: str, now_ns: int, queue_depth: int
    ) -> None:
        draft = self._draft(packet)
        if draft is None:
            return
        hops = draft["hops"]
        if len(hops) >= _MAX_HOPS:
            return
        in_ns = draft["_in"]
        hops.append(
            {
                "dev": draft["_in_dev"],
                "port": port,
                "in_ns": in_ns,
                "out_ns": now_ns,
                "hop_ns": now_ns - in_ns,
                "queue_depth": queue_depth,
            }
        )

    def transfer(self, old: "Packet", new: "Packet") -> None:
        """Hand an in-flight draft across a frame copy.

        The P4 deparser and replication engine forward *copies* of the
        ingress frame (:meth:`Packet.copy_for_replication`), so a sampled
        packet's draft must follow the copy or it would never finish.
        Moves (not clones) the draft: with multicast replication the
        postcard follows the first egress copy.
        """
        if old is new:
            return
        draft = self._draft(old)
        if draft is None:
            return
        del self._inflight[id(old)]
        draft["_pid"] = new.packet_id
        self._inflight[id(new)] = draft

    def finish_postcard(
        self, packet: "Packet", host: str, now_ns: int
    ) -> None:
        """Emit the postcard for a delivered sampled packet."""
        draft = self._draft(packet)
        if draft is None:
            return
        del self._inflight[id(packet)]
        if len(self.postcards) >= self.max_postcards:
            self.postcards_dropped += 1
            return
        self.postcards.append(
            {
                "schema": TELEMETRY_SCHEMA,
                "kind": "postcard",
                "flow": draft["flow"],
                "src": draft["src"],
                "dst": draft["dst"],
                "delivered_to": host,
                "seq": draft["seq"],
                "tc": draft["tc"],
                "payload_bytes": draft["payload_bytes"],
                "sent_ns": draft["sent_ns"],
                "delivered_ns": now_ns,
                "latency_ns": now_ns - draft["sent_ns"],
                "hops": draft["hops"],
            }
        )

    # -- output --------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The full telemetry state as a JSON-stable dict."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "interval": self.interval,
            "seed": self.seed,
            "postcards": {
                "emitted": len(self.postcards),
                "dropped": self.postcards_dropped,
                "evicted": self.inflight_evicted,
                "inflight": len(self._inflight),
                "sampled": self.packets_sampled,
            },
            "samplers": {
                key: self.samplers[key].snapshot()
                for key in sorted(self.samplers)
            },
            "flight": self.flight.as_dict(),
        }

    def summary(self, sim_time_ns: int | None = None) -> dict[str, Any]:
        """A small, manifest-embeddable digest of the snapshot.

        ``sim_time_ns`` (when known) turns cumulative port busy time into
        a utilization fraction.
        """
        queues: list[dict[str, Any]] = []
        links: dict[str, dict[str, Any]] = {}
        for key in sorted(self.samplers):
            ring = self.samplers[key]
            labels = ring.labels
            if ring.name == "net.queue.depth" and "pcp" not in labels:
                peak = max((v for _, v in ring.samples), default=0)
                if peak > 0:
                    queues.append(
                        {
                            "queue": labels.get("port", key),
                            "max_depth": peak,
                            "samples": ring.observed,
                        }
                    )
            elif ring.name in ("net.port.busy_ns", "net.link.tx_bytes"):
                port = str(labels.get("port", key))
                entry = links.setdefault(
                    port, {"port": port, "busy_ns": 0, "tx_bytes": 0}
                )
                last = ring.last
                value = last[1] if last is not None else 0
                if ring.name == "net.port.busy_ns":
                    entry["busy_ns"] = value
                else:
                    entry["tx_bytes"] = value
        queues.sort(key=lambda q: (-q["max_depth"], q["queue"]))
        link_rows = sorted(
            links.values(), key=lambda l: (-l["tx_bytes"], l["port"])
        )
        if sim_time_ns:
            for entry in link_rows:
                entry["utilization"] = round(
                    entry["busy_ns"] / sim_time_ns, 6
                )
        return {
            "schema": TELEMETRY_SCHEMA,
            "interval": self.interval,
            "postcards": len(self.postcards),
            "postcards_dropped": self.postcards_dropped,
            "packets_sampled": self.packets_sampled,
            "flight_events": self.flight.events,
            "flight_snapshots": len(self.flight.snapshots),
            "top_queues": queues[:5],
            "links": link_rows[:10],
        }

    def write_postcards_jsonl(self, path: Path | str) -> int:
        """Write every postcard as one canonical JSON line; returns count."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            for postcard in self.postcards:
                handle.write(
                    json.dumps(postcard, sort_keys=True,
                               separators=(",", ":"))
                )
                handle.write("\n")
        return len(self.postcards)

    def write_snapshot(self, path: Path | str) -> dict[str, Any]:
        """Write the full snapshot as canonical JSON; returns the payload."""
        payload = self.snapshot()
        Path(path).write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        return payload


class NullTelemetry:
    """The inactive telemetry plane: every probe factory returns ``None``.

    Components cache the ``None`` and guard their hook calls with a
    single ``is not None`` test, which is the whole off-path cost.
    """

    enabled = False

    def port_probe(self, port: "Port") -> None:
        return None

    def switch_probe(self, switch: "Switch") -> None:
        return None

    def host_probe(self, host: "Host") -> None:
        return None

    def link_probe(self, link: "Link") -> None:
        return None

    def shaper_probe(self) -> None:
        return None


#: Shared inactive hub returned by ``get_telemetry()`` outside captures.
NULL_TELEMETRY = NullTelemetry()


# -- reading artifacts back ---------------------------------------------------

def load_postcards_jsonl(path: Path | str) -> list[dict[str, Any]]:
    """Read a ``.postcards.jsonl`` sink back into dicts."""
    postcards = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                postcards.append(json.loads(line))
    return postcards


def load_snapshot(path: Path | str) -> dict[str, Any]:
    """Read a ``.telemetry.json`` snapshot, validating its schema."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise ValueError(
            f"unsupported telemetry schema {schema!r}; "
            f"expected {TELEMETRY_SCHEMA}"
        )
    return payload


def snapshot_paths(target: Path | str) -> list[Path]:
    """The ``.telemetry.json`` files under ``target`` (file or dir)."""
    target = Path(target)
    if target.is_file():
        return [target]
    if target.is_dir():
        return sorted(target.glob("*.telemetry.json"))
    raise FileNotFoundError(
        f"no telemetry snapshots at {target} (expected a .telemetry.json "
        f"file or a directory containing them)"
    )


def format_snapshot(payload: dict[str, Any], name: str = "") -> str:
    """Human-readable rendering of one snapshot (``repro obs telemetry``)."""
    lines = []
    title = f"telemetry {name}".rstrip()
    lines.append(title)
    lines.append("-" * len(title))
    cards = payload.get("postcards", {})
    lines.append(
        "postcards: {emitted} emitted / {sampled} sampled "
        "(interval 1-in-{interval}, {dropped} dropped)".format(
            emitted=cards.get("emitted", 0),
            sampled=cards.get("sampled", 0),
            interval=payload.get("interval", "?"),
            dropped=cards.get("dropped", 0),
        )
    )
    flight = payload.get("flight", {})
    lines.append(
        f"flight recorder: {flight.get('events', 0)} events, "
        f"{len(flight.get('snapshots', []))} snapshots"
    )
    samplers = payload.get("samplers", {})
    lines.append(f"samplers: {len(samplers)}")
    for key in sorted(samplers):
        ring = samplers[key]
        samples = ring.get("samples", [])
        last = samples[-1][1] if samples else 0
        peak = max((v for _, v in samples), default=0)
        lines.append(
            f"  {key}: {len(samples)} samples "
            f"(observed {ring.get('observed', 0)}, "
            f"stride {ring.get('stride', 1)}), last={last}, max={peak}"
        )
    return "\n".join(lines)


def format_flight(payload: dict[str, Any], name: str = "") -> str:
    """Human-readable flight-recorder dump (``repro obs flight``)."""
    lines = []
    title = f"flight recorder {name}".rstrip()
    lines.append(title)
    lines.append("-" * len(title))
    flight = payload.get("flight", {})
    snapshots = flight.get("snapshots", [])
    lines.append(
        f"{flight.get('events', 0)} events recorded, "
        f"{len(snapshots)} snapshots "
        f"({flight.get('dropped_snapshots', 0)} dropped)"
    )
    for snap in snapshots:
        t_ns = snap.get("t_ns")
        when = f"t={t_ns}ns" if t_ns is not None else "t=?"
        lines.append(f"* {snap.get('trigger', '?')} ({when})")
        components = snap.get("components", {})
        for component in sorted(components):
            events = components[component]
            lines.append(f"    {component}: {len(events)} events")
            for event in events[-5:]:
                detail = ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(event.items())
                    if k not in ("t_ns", "kind")
                )
                suffix = f" ({detail})" if detail else ""
                lines.append(
                    f"      {event.get('t_ns')}ns "
                    f"{event.get('kind')}{suffix}"
                )
    if not snapshots:
        lines.append("(no snapshots: no chaos fault fired and no verdict "
                     "failed during this run)")
    return "\n".join(lines)


def summarize_postcards(
    postcards: Iterable[dict[str, Any]]
) -> dict[str, dict[str, int]]:
    """Per-flow postcard counts and latency aggregates."""
    table: dict[str, dict[str, int]] = {}
    for card in postcards:
        entry = table.setdefault(
            card.get("flow") or "(none)",
            {"postcards": 0, "total_latency_ns": 0, "max_latency_ns": 0},
        )
        entry["postcards"] += 1
        latency = card.get("latency_ns", 0)
        entry["total_latency_ns"] += latency
        if latency > entry["max_latency_ns"]:
            entry["max_latency_ns"] = latency
    return table

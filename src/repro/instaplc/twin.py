"""The digital-twin I/O device.

When a second vPLC tries to connect to an already-controlled device,
InstaPLC builds a digital twin "from the exchanged packets" of the primary's
handshake and lets the secondary complete an ordinary connection against it.
From the secondary's perspective, "communicating with the digital twin is
identical to communicating with the actual I/O device" (Section 4).

The twin lives in InstaPLC's control plane: it answers the secondary's
connection-management frames by injecting crafted responses through the
switch.  It never generates cyclic data — the secondary's input watchdog is
fed by the real device's frames, which the data plane mirrors to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fieldbus import protocol
from ..net.packet import Packet
from ..p4.switch import P4Switch


@dataclass
class HarvestedParams:
    """Connection parameters extracted from the primary's handshake."""

    cycle_ns: int
    watchdog_factor: int


class DigitalTwin:
    """Handshake responder impersonating one I/O device."""

    def __init__(
        self,
        switch: P4Switch,
        device_name: str,
        secondary_name: str,
        secondary_port: int,
        params: HarvestedParams,
    ) -> None:
        self.switch = switch
        self.device_name = device_name
        self.secondary_name = secondary_name
        self.secondary_port = secondary_port
        self.params = params
        self.handshake_complete = False

    def on_connect_request(self, packet: Packet) -> None:
        """Answer the secondary's connect request as the device would."""
        self._inject(
            {
                "type": protocol.CONNECT_RESPONSE,
                "device": self.device_name,
                "cycle_ns": self.params.cycle_ns,
                "watchdog_factor": self.params.watchdog_factor,
            },
            flow_id=packet.flow_id,
        )

    def on_param_end(self, packet: Packet) -> None:
        """Complete the handshake with an application-ready frame."""
        self._inject(
            {
                "type": protocol.APPLICATION_READY,
                "device": self.device_name,
            },
            flow_id=packet.flow_id,
        )
        self.handshake_complete = True

    def _inject(self, payload: dict, flow_id: str) -> None:
        frame = Packet(
            src=self.device_name,
            dst=self.secondary_name,
            payload_bytes=protocol.DEFAULT_MGMT_PAYLOAD_BYTES,
            traffic_class=protocol.MGMT_CLASS,
            flow_id=flow_id,
            payload=payload,
            created_ns=self.switch.sim.now,
        )
        self.switch.inject(frame, self.secondary_port)

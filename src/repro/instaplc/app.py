"""InstaPLC: in-network vPLC high availability (Section 4).

The application programs a :class:`repro.p4.P4Switch` so that:

1. the first vPLC connecting to an I/O device becomes its **primary** and
   talks to the device directly;
2. a second vPLC becomes the **secondary**: its handshake is answered by a
   :class:`DigitalTwin`, its cyclic output frames are absorbed in the data
   plane, and every frame from the physical device is mirrored to it — so
   it tracks the exact I/O state without touching the device;
3. the data plane counts the primary's cyclic frames in a register; when
   the count stalls for a configurable number of I/O cycles, InstaPLC
   rewrites the forwarding tables so the secondary's frames reach the
   device (with the primary's source identity, making the swap seamless)
   — no dedicated synchronization links between the vPLCs required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..fieldbus import protocol
from ..net.packet import Packet
from ..obs import get_registry, get_tracer
from ..p4.pipeline import MatchKind, PacketContext, Register, Table
from ..p4.switch import P4Switch
from ..simcore import Simulator
from .twin import DigitalTwin, HarvestedParams

MAX_DEVICES = 64


@dataclass
class SwitchoverEvent:
    """One recorded data-plane switchover."""

    device: str
    old_primary: str
    new_primary: str
    detected_ns: int


@dataclass
class DeviceBinding:
    """InstaPLC's state for one protected I/O device."""

    name: str
    port: int
    index: int
    cycle_ns: int | None = None
    watchdog_factor: int | None = None
    primary: str | None = None
    primary_port: int | None = None
    #: source identity written on frames toward the device (survives
    #: switchovers so the device sees one continuous controller)
    primary_alias: str | None = None
    secondary: str | None = None
    secondary_port: int | None = None
    twin: DigitalTwin | None = None
    last_count: int = 0
    last_change_ns: int = 0
    switchovers: list[SwitchoverEvent] = field(default_factory=list)


class InstaPlcApp:
    """The InstaPLC control-plane application for one switch."""

    def __init__(
        self,
        sim: Simulator,
        switch: P4Switch,
        detection_cycles: float = 1.5,
        monitor_granularity_divisor: int = 4,
    ) -> None:
        if detection_cycles <= 0:
            raise ValueError("detection threshold must be positive")
        self.sim = sim
        self.switch = switch
        self.detection_cycles = detection_cycles
        self.monitor_granularity_divisor = monitor_granularity_divisor
        self.bindings: dict[str, DeviceBinding] = {}
        self._next_index = 0
        registry = get_registry()
        self._m_switchovers = registry.counter(
            "instaplc.switchovers", switch=switch.name
        )
        self._m_stall_ns = registry.histogram(
            "instaplc.switchover.stall_ns", switch=switch.name
        )
        self._build_pipeline()
        switch.on_digest(self._on_digest)

    # -- pipeline construction -------------------------------------------------

    def _build_pipeline(self) -> None:
        pipeline = self.switch.pipeline
        self.primary_frames = pipeline.add_register(
            Register("primary_frames", MAX_DEVICES)
        )
        self.secondary_absorbed = pipeline.add_register(
            Register("secondary_absorbed", MAX_DEVICES)
        )

        pipeline.register_action("punt", self._action_punt)
        pipeline.register_action("observe", self._action_observe)
        pipeline.register_action("fwd", self._action_forward)
        pipeline.register_action("fwd_count", self._action_forward_count)
        pipeline.register_action("fwd_rewrite_src", self._action_forward_rewrite_src)
        pipeline.register_action(
            "fwd_rewrite_src_count", self._action_forward_rewrite_src_count
        )
        pipeline.register_action("fwd_rewrite_dst", self._action_forward_rewrite_dst)
        pipeline.register_action("mirror", self._action_mirror)
        pipeline.register_action("absorb", self._action_absorb)
        pipeline.register_action("quiet_drop", self._action_quiet_drop)

        self.mgmt_table = pipeline.add_table(
            Table("mgmt", key_fields=["msg_type"], match_kind=MatchKind.TERNARY)
        )
        self.mgmt_table.insert([protocol.CONNECT_REQUEST], "punt")
        for observed in (
            protocol.CONNECT_RESPONSE,
            protocol.PARAM_END,
            protocol.APPLICATION_READY,
            protocol.RELEASE,
        ):
            self.mgmt_table.insert([observed], "observe", {"kind": observed})

        self.fwd_table = pipeline.add_table(
            Table(
                "fwd",
                key_fields=["src", "dst", "msg_type"],
                match_kind=MatchKind.TERNARY,
            )
        )
        # Fallback L2 forwarding for traffic InstaPLC does not manage.
        self.l2_table = pipeline.add_table(
            Table("l2", key_fields=["dst"]),
            guard=lambda ctx: not ctx.egress_ports and not ctx.clones,
        )

    # -- actions (data plane) ----------------------------------------------------

    def _action_punt(self, ctx: PacketContext) -> None:
        ctx.digest(kind="punt")
        ctx.drop()

    def _action_observe(self, ctx: PacketContext, kind: str) -> None:
        ctx.digest(kind=kind)

    def _action_forward(self, ctx: PacketContext, port: int) -> None:
        ctx.forward(port)

    def _action_forward_count(self, ctx: PacketContext, port: int, index: int) -> None:
        self.primary_frames.write(index, self.primary_frames.read(index) + 1)
        ctx.forward(port)

    def _action_forward_rewrite_src(
        self, ctx: PacketContext, port: int, src: str
    ) -> None:
        ctx.set_field("src", src)
        ctx.forward(port)

    def _action_forward_rewrite_src_count(
        self, ctx: PacketContext, port: int, src: str, index: int
    ) -> None:
        self.primary_frames.write(index, self.primary_frames.read(index) + 1)
        ctx.set_field("src", src)
        ctx.forward(port)

    def _action_forward_rewrite_dst(
        self, ctx: PacketContext, port: int, dst: str
    ) -> None:
        ctx.set_field("dst", dst)
        ctx.forward(port)

    def _action_mirror(
        self,
        ctx: PacketContext,
        port: int,
        dst: str,
        clone_port: int,
        clone_dst: str,
    ) -> None:
        ctx.set_field("dst", dst)
        ctx.forward(port)
        ctx.clone(clone_port, dst=clone_dst)

    def _action_absorb(self, ctx: PacketContext, index: int) -> None:
        self.secondary_absorbed.write(
            index, self.secondary_absorbed.read(index) + 1
        )
        ctx.drop()

    def _action_quiet_drop(self, ctx: PacketContext) -> None:
        ctx.drop()

    # -- configuration ------------------------------------------------------------

    def attach_device(self, device_name: str, port: int) -> DeviceBinding:
        """Declare the switch port a protected I/O device hangs off."""
        if device_name in self.bindings:
            raise ValueError(f"device {device_name!r} already attached")
        if self._next_index >= MAX_DEVICES:
            raise RuntimeError("register capacity exhausted")
        binding = DeviceBinding(
            name=device_name, port=port, index=self._next_index
        )
        self._next_index += 1
        self.bindings[device_name] = binding
        return binding

    # -- digest handling (control plane) -------------------------------------------

    def _on_digest(self, data: dict[str, Any], ctx: PacketContext) -> None:
        kind = data.get("kind")
        if kind == "punt":
            self._handle_connect_request(ctx)
        elif kind == protocol.PARAM_END:
            self._handle_param_end(ctx)

    def _handle_connect_request(self, ctx: PacketContext) -> None:
        device_name = ctx.packet.dst
        binding = self.bindings.get(device_name)
        if binding is None:
            # Not a protected device: fall back to plain forwarding.
            entry = self.l2_table
            action, params, hit = entry.lookup(ctx)
            if hit:
                self.switch.inject(ctx.packet, params["port"])
            return
        src = ctx.packet.src
        if binding.primary is None or src == binding.primary:
            self._designate_primary(binding, ctx)
        elif binding.secondary is None:
            self._designate_secondary(binding, ctx)
        else:
            # Third controller: InstaPLC supports one secondary per device.
            self.sim.trace(
                f"instaplc: rejecting third controller {src} for {device_name}"
            )

    def _designate_primary(self, binding: DeviceBinding, ctx: PacketContext) -> None:
        src = ctx.packet.src
        fresh = binding.primary is None
        binding.primary = src
        binding.primary_alias = binding.primary_alias or src
        binding.primary_port = ctx.ingress_port
        binding.cycle_ns = ctx.packet.payload.get("cycle_ns")
        binding.watchdog_factor = ctx.packet.payload.get("watchdog_factor")
        device, port = binding.name, binding.port
        # Primary -> device: cyclic frames are counted for the data-plane
        # watchdog; everything else just forwards.
        self.fwd_table.insert(
            [src, device, protocol.CYCLIC_DATA],
            "fwd_count",
            {"port": port, "index": binding.index},
            priority=10,
        )
        self.fwd_table.insert(
            [src, device, "*"], "fwd", {"port": port}, priority=5
        )
        # Device -> primary.
        self.fwd_table.insert(
            [device, src, "*"],
            "fwd",
            {"port": ctx.ingress_port},
            priority=5,
        )
        self.switch.inject(ctx.packet, port)
        binding.last_change_ns = self.sim.now
        if fresh and binding.cycle_ns:
            self._start_monitor(binding)
        self.sim.trace(
            f"instaplc: {src} designated primary for {binding.name}"
        )

    def _designate_secondary(self, binding: DeviceBinding, ctx: PacketContext) -> None:
        assert binding.primary is not None and binding.primary_port is not None
        src = ctx.packet.src
        binding.secondary = src
        binding.secondary_port = ctx.ingress_port
        params = HarvestedParams(
            cycle_ns=binding.cycle_ns or ctx.packet.payload.get("cycle_ns", 0),
            watchdog_factor=binding.watchdog_factor
            or ctx.packet.payload.get("watchdog_factor", 3),
        )
        binding.twin = DigitalTwin(
            switch=self.switch,
            device_name=binding.name,
            secondary_name=src,
            secondary_port=ctx.ingress_port,
            params=params,
        )
        device = binding.name
        # Secondary -> device: cyclic absorbed (rule 2: "forwarded to the
        # digital twin only"); management dropped in the data plane — the
        # twin answers from the control plane.
        self.fwd_table.insert(
            [src, device, protocol.CYCLIC_DATA],
            "absorb",
            {"index": binding.index},
            priority=10,
        )
        self.fwd_table.insert([src, device, "*"], "quiet_drop", priority=5)
        # Device -> controller cyclic: mirror a copy to the secondary
        # (rule 3) so both vPLCs track the exact I/O state.  The device
        # addresses its controller by the original alias, and the primary
        # copy is rewritten to whoever is primary now.
        alias = binding.primary_alias or binding.primary
        self.fwd_table.insert(
            [device, alias, protocol.CYCLIC_DATA],
            "mirror",
            {
                "port": binding.primary_port,
                "dst": binding.primary,
                "clone_port": ctx.ingress_port,
                "clone_dst": src,
            },
            priority=10,
        )
        binding.twin.on_connect_request(ctx.packet)
        self.sim.trace(
            f"instaplc: {src} designated secondary for {binding.name}"
        )

    def _handle_param_end(self, ctx: PacketContext) -> None:
        binding = self.bindings.get(ctx.packet.dst)
        if (
            binding is not None
            and binding.twin is not None
            and ctx.packet.src == binding.secondary
        ):
            binding.twin.on_param_end(ctx.packet)

    # -- planned migration -----------------------------------------------------------

    def migrate(self, device_name: str) -> SwitchoverEvent:
        """Interruption-free planned migration of a device's controller.

        Hands control from the current primary to the standby *now*, with
        no failure involved — the vPLC-migration use case the paper cites
        (maintenance, load balancing, host upgrades).  The data-plane
        tables flip atomically; the old primary keeps emitting cyclic
        frames that are from then on absorbed, so it can be drained and
        shut down at leisure.

        Requires a connected secondary; returns the recorded event.
        """
        binding = self.bindings[device_name]
        if binding.secondary is None or binding.twin is None:
            raise RuntimeError(
                f"no standby controller for {device_name!r}; migration "
                f"needs a connected secondary"
            )
        if not binding.twin.handshake_complete:
            raise RuntimeError(
                f"standby for {device_name!r} has not finished its twin "
                f"handshake yet"
            )
        self._switchover(binding)
        return binding.switchovers[-1]

    # -- the data-plane watchdog -----------------------------------------------------

    def _start_monitor(self, binding: DeviceBinding) -> None:
        self.sim.process(
            self._monitor_loop(binding), name=f"instaplc:monitor:{binding.name}"
        )

    def _monitor_loop(self, binding: DeviceBinding):
        assert binding.cycle_ns is not None
        granularity = max(1, binding.cycle_ns // self.monitor_granularity_divisor)
        threshold_ns = round(self.detection_cycles * binding.cycle_ns)
        while True:
            yield granularity
            count = self.primary_frames.read(binding.index)
            if count != binding.last_count:
                binding.last_count = count
                binding.last_change_ns = self.sim.now
                continue
            stalled_for = self.sim.now - binding.last_change_ns
            if (
                count > 0
                and binding.secondary is not None
                and stalled_for >= threshold_ns
            ):
                self._switchover(binding)

    def _switchover(self, binding: DeviceBinding) -> None:
        assert binding.secondary is not None
        assert binding.secondary_port is not None
        assert binding.primary is not None
        old_primary = binding.primary
        new_primary = binding.secondary
        alias = binding.primary_alias or old_primary
        device, port = binding.name, binding.port
        event = SwitchoverEvent(
            device=device,
            old_primary=old_primary,
            new_primary=new_primary,
            detected_ns=self.sim.now,
        )
        binding.switchovers.append(event)
        # The switchover *window*: last observed primary activity to the
        # data-plane table rewrite, rendered on the trace's sim-time track.
        self._m_switchovers.inc()
        self._m_stall_ns.observe(self.sim.now - binding.last_change_ns)
        get_tracer().sim_span(
            "instaplc.switchover",
            start_ns=binding.last_change_ns,
            end_ns=self.sim.now,
            device=device,
            old_primary=old_primary,
            new_primary=new_primary,
        )

        # Secondary becomes the sender toward the device, keeping the
        # original controller identity on the wire.
        self.fwd_table.delete([new_primary, device, protocol.CYCLIC_DATA])
        self.fwd_table.delete([new_primary, device, "*"])
        self.fwd_table.insert(
            [new_primary, device, protocol.CYCLIC_DATA],
            "fwd_rewrite_src_count",
            {"port": port, "src": alias, "index": binding.index},
            priority=10,
        )
        self.fwd_table.insert(
            [new_primary, device, "*"],
            "fwd_rewrite_src",
            {"port": port, "src": alias},
            priority=5,
        )
        # Device frames now go to the new primary under its own name.
        # (The device addresses the alias, so alias-keyed entries — the
        # mirror and the original forward — are the ones to replace.)
        self.fwd_table.delete([device, alias, protocol.CYCLIC_DATA])
        self.fwd_table.delete([device, alias, "*"])
        self.fwd_table.insert(
            [device, alias, "*"],
            "fwd_rewrite_dst",
            {"port": binding.secondary_port, "dst": new_primary},
            priority=5,
        )
        # A resurrected old primary must not reach the device.
        self.fwd_table.delete([old_primary, device, protocol.CYCLIC_DATA])
        self.fwd_table.delete([old_primary, device, "*"])
        self.fwd_table.insert(
            [old_primary, device, "*"], "quiet_drop", priority=8
        )

        binding.primary = new_primary
        binding.primary_port = binding.secondary_port
        binding.primary_alias = alias
        binding.secondary = None
        binding.secondary_port = None
        binding.twin = None
        binding.last_change_ns = self.sim.now
        self.sim.trace(
            f"instaplc: switchover on {device}: {old_primary} -> {new_primary}"
        )

"""The Figure 5 experiment harness.

Scenario (paper, Section 4 / Figure 5): two vPLCs and one I/O device behind
an InstaPLC switch.  vPLC1 connects first (primary), vPLC2 second
(secondary, served by the digital twin).  At a configurable instant vPLC1
crashes; InstaPLC's data-plane watchdog notices the stalled frame counter
and hands control to vPLC2.  The figure plots packets per 50 ms (a) from
each vPLC and (b) toward the I/O device: the to-I/O rate must continue
essentially uninterrupted while vPLC1's rate falls to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fieldbus import protocol
from ..fieldbus.device import IoDeviceApp
from ..metrics.binning import BinnedSeries, bin_counts
from ..net.host import Host
from ..net.link import Link
from ..net.packet import Packet
from ..p4.switch import P4Switch
from ..plc.platform import PlatformModel, VPLC_PREEMPT_RT
from ..plc.program import passthrough_program
from ..plc.runtime import PlcRuntime
from ..simcore import Simulator
from ..simcore.units import MS, SEC
from .app import InstaPlcApp, SwitchoverEvent

#: Cycle time matching Figure 5's ~40 packets per 50 ms band.
DEFAULT_CYCLE_NS = 1_250_000


@dataclass
class Fig5Result:
    """Everything the Figure 5 plots and assertions need."""

    cycle_ns: int
    bin_width_ns: int
    duration_ns: int
    crash_ns: int
    vplc1_tx_ns: list[int] = field(default_factory=list)
    vplc2_tx_ns: list[int] = field(default_factory=list)
    to_io_ns: list[int] = field(default_factory=list)
    switchovers: list[SwitchoverEvent] = field(default_factory=list)
    device_watchdog_expirations: int = 0
    device_fail_safe: bool = False
    device_outputs: dict = field(default_factory=dict)

    def binned(self, which: str) -> BinnedSeries:
        """Packets-per-bin series: ``vplc1`` | ``vplc2`` | ``to_io``."""
        series = {
            "vplc1": self.vplc1_tx_ns,
            "vplc2": self.vplc2_tx_ns,
            "to_io": self.to_io_ns,
        }[which]
        return bin_counts(
            series, self.bin_width_ns, start_ns=0, end_ns=self.duration_ns
        )

    @property
    def switchover_latency_ns(self) -> int | None:
        """Crash-to-table-rewrite delay of the first switchover."""
        if not self.switchovers:
            return None
        return self.switchovers[0].detected_ns - self.crash_ns

    def max_io_gap_after_ns(self, after_ns: int) -> int:
        """Largest inter-arrival gap toward the I/O device after ``after_ns``.

        The availability headline: with InstaPLC this stays within a few
        cycles even across the crash.
        """
        stamps = np.asarray(
            [t for t in self.to_io_ns if t >= after_ns], dtype=np.int64
        )
        if stamps.size < 2:
            return 0
        return int(np.max(np.diff(stamps)))

    def io_outage_intervals(
        self, gap_threshold_ns: int | None = None
    ) -> list[tuple[int, int]]:
        """Intervals where the I/O device went unserved beyond the watchdog.

        A gap between consecutive cyclic frames longer than
        ``gap_threshold_ns`` (default: three cycles, the watchdog
        convention) counts as a control outage from the last good frame to
        the frame that ended the gap.  This is the packet-level analogue of
        :meth:`repro.core.CellDowntimeLog.intervals`, letting the chaos
        report treat a switchover study and a fault campaign uniformly.
        """
        threshold = (
            gap_threshold_ns if gap_threshold_ns is not None
            else 3 * self.cycle_ns
        )
        intervals: list[tuple[int, int]] = []
        for previous, current in zip(self.to_io_ns, self.to_io_ns[1:]):
            if current - previous > threshold:
                intervals.append((previous, current))
        return intervals

    def io_downtime_ns(self, gap_threshold_ns: int | None = None) -> int:
        """Total control downtime toward the I/O device (see above)."""
        return sum(
            end - start
            for start, end in self.io_outage_intervals(gap_threshold_ns)
        )


def run_fig5(
    cycle_ns: int = DEFAULT_CYCLE_NS,
    duration_ns: int = 3 * SEC,
    crash_ns: int = round(1.5 * SEC),
    secondary_start_ns: int = 200 * MS,
    bin_width_ns: int = 50 * MS,
    watchdog_factor: int = 3,
    detection_cycles: float = 1.5,
    platform: PlatformModel = VPLC_PREEMPT_RT,
    seed: int = 0,
) -> Fig5Result:
    """Run the InstaPLC switchover scenario and collect Figure 5's series."""
    sim = Simulator(seed=seed)
    switch = P4Switch(sim, "instaplc-switch")
    vplc1_host = Host(sim, "vplc1")
    vplc2_host = Host(sim, "vplc2")
    io_host = Host(sim, "io")

    # Wire: port 0 = vplc1, port 1 = vplc2, port 2 = io.
    for host in (vplc1_host, vplc2_host, io_host):
        Link(sim, host.add_port(), switch.add_port(), 1e9, 500)

    app = InstaPlcApp(sim, switch, detection_cycles=detection_cycles)
    app.attach_device("io", port=2)

    device = IoDeviceApp(sim, io_host)
    result = Fig5Result(
        cycle_ns=cycle_ns,
        bin_width_ns=bin_width_ns,
        duration_ns=duration_ns,
        crash_ns=crash_ns,
    )

    def ingress_tap(packet: Packet, port_index: int) -> None:
        if packet.payload.get("type") != protocol.CYCLIC_DATA:
            return
        if port_index == 0:
            result.vplc1_tx_ns.append(sim.now)
        elif port_index == 1:
            result.vplc2_tx_ns.append(sim.now)

    def egress_tap(packet: Packet, port_index: int) -> None:
        if port_index == 2 and packet.payload.get("type") == protocol.CYCLIC_DATA:
            result.to_io_ns.append(sim.now)

    switch.ingress_taps.append(ingress_tap)
    switch.egress_taps.append(egress_tap)

    params = protocol.ConnectionParams(
        cycle_ns=cycle_ns, watchdog_factor=watchdog_factor
    )
    vplc1 = PlcRuntime(
        sim, vplc1_host, passthrough_program({"io.echo": "io.counter"}),
        cycle_ns=cycle_ns, platform=platform, name="vplc1",
    )
    vplc1.assign_device("io", params=params)
    vplc2 = PlcRuntime(
        sim, vplc2_host, passthrough_program({"io.echo": "io.counter"}),
        cycle_ns=cycle_ns, platform=platform, name="vplc2",
    )
    vplc2.assign_device("io", params=params)

    vplc1.start()
    sim.schedule(vplc2.start, after=secondary_start_ns)
    sim.schedule(vplc1.crash, after=crash_ns)
    sim.run(until=duration_ns)

    binding = app.bindings["io"]
    result.switchovers = list(binding.switchovers)
    result.device_watchdog_expirations = device.stats.watchdog_expirations
    result.device_fail_safe = device.fail_safe
    result.device_outputs = dict(device.outputs)
    return result

"""InstaPLC — in-network vPLC high availability (Section 4 / Figure 5)."""

from .app import DeviceBinding, InstaPlcApp, MAX_DEVICES, SwitchoverEvent
from .harness import DEFAULT_CYCLE_NS, Fig5Result, run_fig5
from .twin import DigitalTwin, HarvestedParams

__all__ = [
    "DEFAULT_CYCLE_NS",
    "DeviceBinding",
    "DigitalTwin",
    "Fig5Result",
    "HarvestedParams",
    "InstaPlcApp",
    "MAX_DEVICES",
    "SwitchoverEvent",
    "run_fig5",
]

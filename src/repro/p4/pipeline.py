"""A P4-style match-action pipeline.

Models the programmable data plane InstaPLC is built on (DPDK SWX + P4 in
the paper): a parser extracts header fields into a context, a sequence of
match-action tables decides the frame's fate, and primitive actions can
rewrite headers, multicast, drop, update registers, or raise digests to the
control plane.  The control-plane API (entry insert/delete, register
access, digest listeners) mirrors P4Runtime's shape.
"""

from __future__ import annotations

import fnmatch
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Callable

from ..net.packet import Packet


class MatchKind(Enum):
    """Supported match kinds."""

    EXACT = auto()
    TERNARY = auto()  # value with '*' wildcards via fnmatch


@dataclass
class PacketContext:
    """Mutable per-packet state flowing through the pipeline."""

    packet: Packet
    ingress_port: int
    fields: dict[str, Any] = field(default_factory=dict)
    egress_ports: list[int] = field(default_factory=list)
    #: mirrored copies: (egress port, field overrides applied to the copy)
    clones: list[tuple[int, dict[str, Any]]] = field(default_factory=list)
    dropped: bool = False
    digests: list[dict[str, Any]] = field(default_factory=list)
    #: trace of (table, action) decisions, for debugging and tests
    trace: list[tuple[str, str]] = field(default_factory=list)

    # -- primitive actions -------------------------------------------------

    def forward(self, port: int) -> None:
        """Add an egress port."""
        self.egress_ports.append(port)

    def clone(self, port: int, **overrides: Any) -> None:
        """Mirror a copy out ``port`` with rewritten fields (clone session)."""
        self.clones.append((port, overrides))

    def drop(self) -> None:
        """Discard the frame (clones already created still egress)."""
        self.dropped = True
        self.egress_ports.clear()

    def set_field(self, name: str, value: Any) -> None:
        """Rewrite a parsed field; the deparser folds it into the frame."""
        self.fields[name] = value

    def digest(self, **data: Any) -> None:
        """Raise a digest to the control plane."""
        self.digests.append(data)


#: An action implementation: ``fn(ctx, **params)``.
ActionFn = Callable[..., None]


@dataclass(frozen=True)
class TableEntry:
    """One installed table entry."""

    key: tuple[Any, ...]
    action: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    entry_id: int = field(default_factory=itertools.count(1).__next__)


class Table:
    """A match-action table over named key fields."""

    def __init__(
        self,
        name: str,
        key_fields: list[str],
        match_kind: MatchKind = MatchKind.EXACT,
        default_action: str = "NoAction",
        default_params: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.key_fields = list(key_fields)
        self.match_kind = match_kind
        self.default_action = default_action
        self.default_params = default_params or {}
        self._entries: dict[tuple[Any, ...], TableEntry] = {}
        self._ternary_entries: list[TableEntry] = []
        self.hits = 0
        self.misses = 0

    def insert(
        self,
        key: tuple[Any, ...] | list[Any],
        action: str,
        params: dict[str, Any] | None = None,
        priority: int = 0,
    ) -> TableEntry:
        """Install an entry (replaces an existing identical key)."""
        key_tuple = tuple(key)
        if len(key_tuple) != len(self.key_fields):
            raise ValueError(
                f"table {self.name}: key arity {len(key_tuple)} != "
                f"{len(self.key_fields)}"
            )
        entry = TableEntry(
            key=key_tuple, action=action, params=params or {}, priority=priority
        )
        if self.match_kind is MatchKind.EXACT:
            self._entries[key_tuple] = entry
        else:
            self._ternary_entries = [
                e for e in self._ternary_entries if e.key != key_tuple
            ]
            self._ternary_entries.append(entry)
            self._ternary_entries.sort(key=lambda e: -e.priority)
        return entry

    def delete(self, key: tuple[Any, ...] | list[Any]) -> bool:
        """Remove an entry; returns ``True`` when one existed."""
        key_tuple = tuple(key)
        if self.match_kind is MatchKind.EXACT:
            return self._entries.pop(key_tuple, None) is not None
        before = len(self._ternary_entries)
        self._ternary_entries = [
            e for e in self._ternary_entries if e.key != key_tuple
        ]
        return len(self._ternary_entries) != before

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()
        self._ternary_entries.clear()

    def entries(self) -> list[TableEntry]:
        """All installed entries."""
        if self.match_kind is MatchKind.EXACT:
            return list(self._entries.values())
        return list(self._ternary_entries)

    def lookup(self, ctx: PacketContext) -> tuple[str, dict[str, Any], bool]:
        """Match the context; returns ``(action, params, hit)``."""
        key = tuple(ctx.fields.get(name) for name in self.key_fields)
        if self.match_kind is MatchKind.EXACT:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry.action, entry.params, True
        else:
            for entry in self._ternary_entries:
                if all(
                    fnmatch.fnmatch(str(actual), str(pattern))
                    for actual, pattern in zip(key, entry.key)
                ):
                    self.hits += 1
                    return entry.action, entry.params, True
        self.misses += 1
        return self.default_action, self.default_params, False


class Register:
    """A P4 register array: data-plane state the control plane can read."""

    def __init__(self, name: str, size: int, initial: Any = 0) -> None:
        if size < 1:
            raise ValueError("register size must be positive")
        self.name = name
        self._cells: list[Any] = [initial] * size

    def read(self, index: int) -> Any:
        """Read one cell."""
        return self._cells[index]

    def write(self, index: int, value: Any) -> None:
        """Write one cell."""
        self._cells[index] = value

    def __len__(self) -> int:
        return len(self._cells)


@dataclass
class PipelineStage:
    """One table application, optionally guarded by a predicate."""

    table: Table
    guard: Callable[[PacketContext], bool] | None = None


class P4Pipeline:
    """Parser + ordered table stages + action registry."""

    def __init__(
        self,
        name: str,
        parser: Callable[[Packet, int], dict[str, Any]],
    ) -> None:
        self.name = name
        self.parser = parser
        self.stages: list[PipelineStage] = []
        self.tables: dict[str, Table] = {}
        self.registers: dict[str, Register] = {}
        self._actions: dict[str, ActionFn] = {"NoAction": lambda ctx: None}

    def add_table(
        self,
        table: Table,
        guard: Callable[[PacketContext], bool] | None = None,
    ) -> Table:
        """Append a table stage."""
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        self.stages.append(PipelineStage(table=table, guard=guard))
        return table

    def add_register(self, register: Register) -> Register:
        """Register a named register array."""
        if register.name in self.registers:
            raise ValueError(f"duplicate register {register.name!r}")
        self.registers[register.name] = register
        return register

    def register_action(self, name: str, fn: ActionFn) -> None:
        """Make an action available to table entries."""
        if name in self._actions:
            raise ValueError(f"duplicate action {name!r}")
        self._actions[name] = fn

    def process(self, packet: Packet, ingress_port: int) -> PacketContext:
        """Run one frame through parser and all stages."""
        ctx = PacketContext(
            packet=packet,
            ingress_port=ingress_port,
            fields=self.parser(packet, ingress_port),
        )
        for stage in self.stages:
            if ctx.dropped:
                break
            if stage.guard is not None and not stage.guard(ctx):
                continue
            action_name, params, _ = stage.table.lookup(ctx)
            ctx.trace.append((stage.table.name, action_name))
            action = self._actions.get(action_name)
            if action is None:
                raise KeyError(
                    f"table {stage.table.name} references unknown action "
                    f"{action_name!r}"
                )
            action(ctx, **params)
        return ctx

"""P4-style programmable data plane.

- :mod:`repro.p4.pipeline` — parser, match-action tables, actions,
  registers, digests;
- :mod:`repro.p4.switch` — the software switch device with a Python
  control-plane API (the paper's DPDK SWX + P4 stand-in).
"""

from .pipeline import (
    MatchKind,
    P4Pipeline,
    PacketContext,
    PipelineStage,
    Register,
    Table,
    TableEntry,
)
from .switch import P4Switch, REWRITABLE_FIELDS, default_parser

__all__ = [
    "MatchKind",
    "P4Pipeline",
    "P4Switch",
    "PacketContext",
    "PipelineStage",
    "REWRITABLE_FIELDS",
    "Register",
    "Table",
    "TableEntry",
    "default_parser",
]

"""The programmable switch device: a P4 pipeline behind real ports.

Plays the role of the paper's DPDK SWX software switch: frames arriving on
any port run through the :class:`P4Pipeline`; the deparser applies field
rewrites back onto the frame; egress replication sends copies out every
selected port; digests are delivered to control-plane listeners.  The
control plane is plain Python calling :meth:`table`, :meth:`register`, and
:meth:`inject` — the paper's architecture exactly (P4 data plane, Python
control plane).
"""

from __future__ import annotations

from typing import Any, Callable

from ..net.device import Device
from ..net.link import Port
from ..net.packet import Packet
from ..obs import get_registry, get_telemetry
from ..simcore import Simulator
from .pipeline import P4Pipeline, PacketContext, Register, Table

#: Fields the deparser writes back onto the frame when actions changed them.
REWRITABLE_FIELDS = ("src", "dst", "flow_id")

DigestListener = Callable[[dict[str, Any], PacketContext], None]


def default_parser(packet: Packet, ingress_port: int) -> dict[str, Any]:
    """Extract the header fields InstaPLC-style applications match on."""
    return {
        "src": packet.src,
        "dst": packet.dst,
        "flow_id": packet.flow_id,
        "msg_type": packet.payload.get("type", ""),
        "device": packet.payload.get("device", ""),
        "ingress_port": ingress_port,
        "pcp": packet.pcp,
    }


class P4Switch(Device):
    """A software switch executing one P4 pipeline."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        pipeline: P4Pipeline | None = None,
        processing_delay_ns: int = 2_000,
    ) -> None:
        super().__init__(sim, name)
        self.pipeline = pipeline or P4Pipeline(
            name=f"{name}/pipeline", parser=default_parser
        )
        self.processing_delay_ns = processing_delay_ns
        self._digest_listeners: list[DigestListener] = []
        self.processed_frames = 0
        self.dropped_frames = 0
        registry = get_registry()
        self._m_processed = registry.counter(
            "p4.switch.frames", switch=name, outcome="processed"
        )
        self._m_dropped = registry.counter(
            "p4.switch.frames", switch=name, outcome="dropped"
        )
        #: observers called on (packet, ingress_port_index) for monitoring
        self.ingress_taps: list[Callable[[Packet, int], None]] = []
        #: observers called on (packet, egress_port_index)
        self.egress_taps: list[Callable[[Packet, int], None]] = []
        # INT ingress stamping (None when telemetry is off).
        self._tel = get_telemetry().switch_probe(self)

    # -- control-plane API ---------------------------------------------------

    def table(self, name: str) -> Table:
        """Access a pipeline table by name."""
        return self.pipeline.tables[name]

    def register(self, name: str) -> Register:
        """Access a pipeline register by name."""
        return self.pipeline.registers[name]

    def on_digest(self, listener: DigestListener) -> None:
        """Subscribe to data-plane digests."""
        self._digest_listeners.append(listener)

    def inject(self, packet: Packet, egress_port: int) -> None:
        """Control-plane packet-out: emit a frame on a port directly."""
        if not 0 <= egress_port < len(self.ports):
            raise ValueError(f"no port {egress_port} on {self.name}")
        for tap in self.egress_taps:
            tap(packet, egress_port)
        self.ports[egress_port].send(packet)

    # -- data plane ----------------------------------------------------------

    def receive(self, packet: Packet, in_port: Port) -> None:
        if self._tel is not None:
            self._tel.on_ingress(packet)
        for tap in self.ingress_taps:
            tap(packet, in_port.index)
        self.sim.schedule(
            lambda: self._process(packet, in_port.index),
            after=self.processing_delay_ns,
        )

    def _process(self, packet: Packet, ingress_index: int) -> None:
        self.processed_frames += 1
        self._m_processed.inc()
        ctx = self.pipeline.process(packet, ingress_index)
        for digest_data in ctx.digests:
            for listener in self._digest_listeners:
                listener(digest_data, ctx)
        packet.hops.append(self.name)
        for egress_index, overrides in ctx.clones:
            if not 0 <= egress_index < len(self.ports):
                continue
            clone = ctx.packet.copy_for_replication()
            if self._tel is not None:
                # A sampled ingress frame's postcard follows the copy.
                self._tel.hub.transfer(ctx.packet, clone)
            for field_name, value in overrides.items():
                if field_name not in REWRITABLE_FIELDS:
                    raise ValueError(f"cannot rewrite field {field_name!r}")
                setattr(clone, field_name, value)
            for tap in self.egress_taps:
                tap(clone, egress_index)
            self.ports[egress_index].send(clone)
        if ctx.dropped or not ctx.egress_ports:
            if not ctx.clones:
                self.dropped_frames += 1
                self._m_dropped.inc()
            return
        for egress_index in ctx.egress_ports:
            if not 0 <= egress_index < len(self.ports):
                continue
            out = self._deparse(ctx)
            if self._tel is not None:
                self._tel.hub.transfer(ctx.packet, out)
            for tap in self.egress_taps:
                tap(out, egress_index)
            self.ports[egress_index].send(out)

    def _deparse(self, ctx: PacketContext) -> Packet:
        """Fold rewritten fields into a fresh frame copy."""
        out = ctx.packet.copy_for_replication()
        for field_name in REWRITABLE_FIELDS:
            value = ctx.fields.get(field_name)
            if value is not None:
                setattr(out, field_name, value)
        return out

"""Sampling execution environment for XDP programs.

The same program costs different amounts on different packets: cache state,
concurrent flows, and ring-buffer contention all move the number.  An
:class:`ExecutionEnvironment` captures that context and draws per-packet
execution times — the stochastic core behind the Figure 4 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_registry
from .contention import CacheContentionModel
from .program import XdpProgram


@dataclass
class ExecutionEnvironment:
    """Execution context for one XDP hook (one NIC queue, one core)."""

    rng: np.random.Generator
    active_flows: int = 1
    cache_model: CacheContentionModel = CacheContentionModel()
    #: extra multiplicative widening of *contended* op variance per flow
    contention_slope: float = 0.05

    def __post_init__(self) -> None:
        self._m_exec_ns = get_registry().histogram(
            "ebpf.exec_ns", flows=self.active_flows
        )

    def contention_scale(self) -> float:
        """Variance multiplier applied to memory-touching operations."""
        extra = max(0, self.active_flows - 1)
        return 1.0 + self.contention_slope * min(extra, 64)

    def execute_ns(self, program: XdpProgram) -> float:
        """Sample the execution latency of one program invocation."""
        scale = self.contention_scale()
        total = 0.0
        for instruction in program.instructions:
            total += instruction.cost(program.cost_table).sample_ns(
                self.rng, contention_scale=scale
            )
        total += self.cache_model.sample_ns(self.active_flows, self.rng)
        self._m_exec_ns.observe(total)
        return total

    def execute_many_ns(self, program: XdpProgram, count: int) -> np.ndarray:
        """Sample ``count`` invocations (vector convenience for benches)."""
        if count < 1:
            raise ValueError("count must be positive")
        return np.array([self.execute_ns(program) for _ in range(count)])

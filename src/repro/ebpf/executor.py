"""Sampling execution environment for XDP programs.

The same program costs different amounts on different packets: cache state,
concurrent flows, and ring-buffer contention all move the number.  An
:class:`ExecutionEnvironment` captures that context and draws per-packet
execution times — the stochastic core behind the Figure 4 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_registry
from .contention import CacheContentionModel
from .program import XdpProgram


@dataclass
class ExecutionEnvironment:
    """Execution context for one XDP hook (one NIC queue, one core)."""

    rng: np.random.Generator
    active_flows: int = 1
    cache_model: CacheContentionModel = CacheContentionModel()
    #: extra multiplicative widening of *contended* op variance per flow
    contention_slope: float = 0.05

    def __post_init__(self) -> None:
        self._m_exec_ns = get_registry().histogram(
            "ebpf.exec_ns", flows=self.active_flows
        )
        # program -> (scale, [(mean, std, spike_p, lo, hi), ...]).  The
        # effective per-op distributions depend only on the program and the
        # contention scale, so they are computed once instead of per packet.
        # Keyed by id() with the program kept as a strong reference so the
        # id cannot be recycled while the entry lives.
        self._cost_cache: dict[
            int, tuple[XdpProgram, float, list[tuple[float, float, float, float, float]]]
        ] = {}

    def contention_scale(self) -> float:
        """Variance multiplier applied to memory-touching operations."""
        extra = max(0, self.active_flows - 1)
        return 1.0 + self.contention_slope * min(extra, 64)

    def _cost_sequence(
        self, program: XdpProgram, scale: float
    ) -> list[tuple[float, float, float, float, float]]:
        cached = self._cost_cache.get(id(program))
        if cached is not None and cached[0] is program and cached[1] == scale:
            return cached[2]
        sequence: list[tuple[float, float, float, float, float]] = []
        for instruction in program.instructions:
            cost = instruction.cost(program.cost_table)
            # Same arithmetic as OpCost.sample_ns so samples stay
            # bit-identical to the uncached path.
            std = cost.std_ns * (scale if cost.contended else 1.0)
            mean = cost.mean_ns * (
                1.0 + (scale - 1.0) * 0.25 if cost.contended else 1.0
            )
            sequence.append(
                (mean, std, cost.spike_probability, cost.spike_min_ns, cost.spike_max_ns)
            )
        self._cost_cache[id(program)] = (program, scale, sequence)
        return sequence

    def execute_ns(self, program: XdpProgram) -> float:
        """Sample the execution latency of one program invocation."""
        scale = self.contention_scale()
        rng = self.rng
        normal = rng.normal
        random = rng.random
        uniform = rng.uniform
        total = 0.0
        for mean, std, spike_p, spike_lo, spike_hi in self._cost_sequence(
            program, scale
        ):
            value = normal(mean, std)
            if value < 0.0:
                value = 0.0
            if spike_p > 0 and random() < spike_p:
                value += uniform(spike_lo, spike_hi)
            total += value
        total += self.cache_model.sample_ns(self.active_flows, rng)
        self._m_exec_ns.observe(total)
        return total

    def execute_many_ns(self, program: XdpProgram, count: int) -> np.ndarray:
        """Sample ``count`` invocations (vector convenience for benches)."""
        if count < 1:
            raise ValueError("count must be positive")
        return np.array([self.execute_ns(program) for _ in range(count)])

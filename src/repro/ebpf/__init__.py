"""eBPF/XDP program and execution-cost models.

- :mod:`repro.ebpf.isa` — cost-annotated operation kinds;
- :mod:`repro.ebpf.program` — programs, verifier checks, static cost
  bounds, and the six Figure 4 variants;
- :mod:`repro.ebpf.executor` — per-packet execution-time sampling under
  flow contention.
"""

from .executor import ExecutionEnvironment
from .isa import DEFAULT_COSTS, Instruction, OpCost, OpKind
from .program import (
    MAX_INSTRUCTIONS,
    StaticCostBound,
    VerifierError,
    XdpAction,
    XdpProgram,
    build_base,
    build_ts,
    build_ts_d_rb,
    build_ts_ow,
    build_ts_rb,
    build_ts_ts,
    paper_variants,
    verify,
)

__all__ = [
    "DEFAULT_COSTS",
    "ExecutionEnvironment",
    "Instruction",
    "MAX_INSTRUCTIONS",
    "OpCost",
    "OpKind",
    "StaticCostBound",
    "VerifierError",
    "XdpAction",
    "XdpProgram",
    "build_base",
    "build_ts",
    "build_ts_d_rb",
    "build_ts_ow",
    "build_ts_rb",
    "build_ts_ts",
    "paper_variants",
    "verify",
]

"""A cost-annotated instruction/helper model for eBPF programs.

We do not interpret eBPF bytecode; we model the *latency* of the operations
an XDP program performs, because that is what Traffic Reflection measures.
Every operation kind carries a cost distribution (mean, standard deviation,
and optional rare-spike component).  The numbers are calibrated so the six
Figure 4 program variants reproduce the paper's CDF ordering and the
ring-buffer / no-ring-buffer split; see EXPERIMENTS.md for the calibration
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

import numpy as np


class OpKind(Enum):
    """Operation kinds an XDP program is composed of."""

    ALU = auto()              # register arithmetic / mov / shifts
    BRANCH = auto()           # conditional jump
    PKT_READ = auto()         # load from packet data (after bounds check)
    PKT_WRITE = auto()        # store into packet data
    MAP_LOOKUP = auto()       # bpf_map_lookup_elem (hash/array)
    MAP_UPDATE = auto()       # bpf_map_update_elem
    HELPER_KTIME = auto()     # bpf_ktime_get_ns
    HELPER_RINGBUF = auto()   # bpf_ringbuf_output (reserve+memcpy+commit)
    RETURN = auto()           # XDP action return


@dataclass(frozen=True)
class OpCost:
    """Latency distribution of one operation kind."""

    mean_ns: float
    std_ns: float
    spike_probability: float = 0.0
    spike_min_ns: float = 0.0
    spike_max_ns: float = 0.0
    #: Whether this op touches memory shared across flows (subject to cache
    #: contention scaling).
    contended: bool = False

    def sample_ns(self, rng: np.random.Generator, contention_scale: float = 1.0) -> float:
        """Draw one execution-latency sample for this operation."""
        std = self.std_ns * (contention_scale if self.contended else 1.0)
        mean = self.mean_ns * (
            1.0 + (contention_scale - 1.0) * 0.25 if self.contended else 1.0
        )
        value = max(0.0, rng.normal(mean, std))
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            value += rng.uniform(self.spike_min_ns, self.spike_max_ns)
        return value


#: Default cost table.  Calibrated for the Figure 4 reproduction:
#: plain instructions are sub-nanosecond-to-nanosecond; helper calls carry
#: call overhead; ``bpf_ringbuf_output`` is dominated by the reserve/commit
#: protocol and consumer wake-up, making it the expensive outlier the
#: paper's "Ring Buffer" cluster shows.
DEFAULT_COSTS: dict[OpKind, OpCost] = {
    OpKind.ALU: OpCost(mean_ns=1.2, std_ns=0.3),
    OpKind.BRANCH: OpCost(mean_ns=1.8, std_ns=0.6),
    OpKind.PKT_READ: OpCost(mean_ns=28.0, std_ns=8.0, contended=True),
    OpKind.PKT_WRITE: OpCost(mean_ns=290.0, std_ns=55.0, contended=True),
    OpKind.MAP_LOOKUP: OpCost(mean_ns=85.0, std_ns=20.0, contended=True),
    OpKind.MAP_UPDATE: OpCost(mean_ns=130.0, std_ns=30.0, contended=True),
    OpKind.HELPER_KTIME: OpCost(mean_ns=410.0, std_ns=70.0),
    OpKind.HELPER_RINGBUF: OpCost(
        mean_ns=3_900.0,
        std_ns=650.0,
        spike_probability=0.012,
        spike_min_ns=1_500.0,
        spike_max_ns=9_000.0,
        contended=True,
    ),
    OpKind.RETURN: OpCost(mean_ns=2.0, std_ns=0.5),
}


@dataclass(frozen=True)
class Instruction:
    """One operation instance inside a program."""

    kind: OpKind
    comment: str = ""

    def cost(self, table: dict[OpKind, OpCost] | None = None) -> OpCost:
        """The cost entry for this instruction."""
        return (table or DEFAULT_COSTS)[self.kind]

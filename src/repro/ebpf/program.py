"""XDP programs and a verifier-style static analysis.

:class:`XdpProgram` is a straight-line sequence of cost-annotated
operations ending in an XDP action.  :func:`verify` performs the checks the
in-kernel verifier would insist on for such programs (bounded size, single
terminating return, packet accesses preceded by a bounds-check branch) and
derives *static cost bounds* — the analysis the paper calls for when it
says eBPF offers "no guaranteed latency and jitter upper bounds".

The module also builds the six program variants evaluated in Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .isa import DEFAULT_COSTS, Instruction, OpCost, OpKind

#: Classic in-kernel limit for one program (pre-5.2 value; kept as the
#: conservative bound for industrial deployments).
MAX_INSTRUCTIONS = 4096


class XdpAction(Enum):
    """XDP return actions."""

    XDP_TX = "XDP_TX"          # reflect out the same NIC
    XDP_PASS = "XDP_PASS"      # continue into the kernel stack
    XDP_DROP = "XDP_DROP"
    XDP_REDIRECT = "XDP_REDIRECT"


class VerifierError(ValueError):
    """Raised when a program fails static verification."""


@dataclass
class XdpProgram:
    """A named straight-line XDP program."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    action: XdpAction = XdpAction.XDP_TX
    cost_table: dict[OpKind, OpCost] = field(default_factory=lambda: dict(DEFAULT_COSTS))

    def add(self, kind: OpKind, comment: str = "") -> "XdpProgram":
        """Append an instruction (fluent)."""
        self.instructions.append(Instruction(kind=kind, comment=comment))
        return self

    def count(self, kind: OpKind) -> int:
        """Number of instructions of one kind."""
        return sum(1 for ins in self.instructions if ins.kind == kind)

    @property
    def uses_ringbuf(self) -> bool:
        """True when the program calls ``bpf_ringbuf_output``."""
        return self.count(OpKind.HELPER_RINGBUF) > 0


@dataclass(frozen=True)
class StaticCostBound:
    """Verifier-derived execution-cost bounds (ns)."""

    expected_ns: float
    deviation_ns: float

    def upper_bound_ns(self, sigmas: float = 6.0) -> float:
        """A high-confidence upper bound (mean + ``sigmas``·std).

        Note: rare-spike components (ring-buffer wake-ups, preemption) are
        *excluded* — this is exactly why static analysis alone cannot give
        hard guarantees, the gap Traffic Reflection measures empirically.
        """
        return self.expected_ns + sigmas * self.deviation_ns


def verify(program: XdpProgram) -> StaticCostBound:
    """Statically check a program and derive its cost bound.

    Checks (mirroring the kernel verifier's spirit for straight-line code):

    - non-empty, at most :data:`MAX_INSTRUCTIONS` instructions;
    - exactly one RETURN, as the final instruction;
    - every packet read/write is preceded by at least one BRANCH
      (the bounds check the verifier requires before packet access).
    """
    if not program.instructions:
        raise VerifierError(f"{program.name}: empty program")
    if len(program.instructions) > MAX_INSTRUCTIONS:
        raise VerifierError(
            f"{program.name}: {len(program.instructions)} instructions "
            f"exceed the {MAX_INSTRUCTIONS} limit"
        )
    returns = [
        i for i, ins in enumerate(program.instructions)
        if ins.kind is OpKind.RETURN
    ]
    if len(returns) != 1 or returns[0] != len(program.instructions) - 1:
        raise VerifierError(
            f"{program.name}: must end with exactly one RETURN"
        )
    seen_branch = False
    for index, instruction in enumerate(program.instructions):
        if instruction.kind is OpKind.BRANCH:
            seen_branch = True
        if instruction.kind in (OpKind.PKT_READ, OpKind.PKT_WRITE) and not seen_branch:
            raise VerifierError(
                f"{program.name}: packet access at {index} without a "
                f"preceding bounds check"
            )
    expected = sum(
        ins.cost(program.cost_table).mean_ns for ins in program.instructions
    )
    variance = sum(
        ins.cost(program.cost_table).std_ns ** 2 for ins in program.instructions
    )
    return StaticCostBound(expected_ns=expected, deviation_ns=variance ** 0.5)


# -- the six Section 3 variants ----------------------------------------------


def _base_skeleton(name: str) -> XdpProgram:
    """Parse Ethernet, bounds-check, swap MACs — the reflect skeleton."""
    program = XdpProgram(name=name)
    program.add(OpKind.BRANCH, "bounds check: eth header")
    program.add(OpKind.PKT_READ, "load dst MAC")
    program.add(OpKind.PKT_READ, "load src MAC")
    for _ in range(4):
        program.add(OpKind.ALU, "swap MAC words")
    program.add(OpKind.PKT_WRITE, "store swapped MACs")
    return program


def build_base() -> XdpProgram:
    """(1) Base: reflect packets back to the NIC."""
    return _base_skeleton("Base").add(OpKind.RETURN, "XDP_TX")


def build_ts() -> XdpProgram:
    """(2) TS: Base + one timestamp."""
    program = _base_skeleton("TS")
    program.add(OpKind.HELPER_KTIME, "t0 = ktime_get_ns()")
    return program.add(OpKind.RETURN, "XDP_TX")


def build_ts_ts() -> XdpProgram:
    """(3) TS-TS: Base + two timestamps."""
    program = _base_skeleton("TS-TS")
    program.add(OpKind.HELPER_KTIME, "t0 = ktime_get_ns()")
    program.add(OpKind.HELPER_KTIME, "t1 = ktime_get_ns()")
    return program.add(OpKind.RETURN, "XDP_TX")


def build_ts_rb() -> XdpProgram:
    """(4) TS-RB: timestamps pushed to a ring buffer."""
    program = _base_skeleton("TS-RB")
    program.add(OpKind.HELPER_KTIME, "t0 = ktime_get_ns()")
    program.add(OpKind.HELPER_RINGBUF, "ringbuf_output(t0)")
    return program.add(OpKind.RETURN, "XDP_TX")


def build_ts_ow() -> XdpProgram:
    """(5) TS-OW: timestamp overwritten into the packet payload."""
    program = _base_skeleton("TS-OW")
    program.add(OpKind.HELPER_KTIME, "t0 = ktime_get_ns()")
    program.add(OpKind.BRANCH, "bounds check: payload room")
    program.add(OpKind.PKT_WRITE, "write t0 into payload")
    return program.add(OpKind.RETURN, "XDP_TX")


def build_ts_d_rb() -> XdpProgram:
    """(6) TS-D-RB: difference of two timestamps into the ring buffer."""
    program = _base_skeleton("TS-D-RB")
    program.add(OpKind.HELPER_KTIME, "t0 = ktime_get_ns()")
    program.add(OpKind.HELPER_KTIME, "t1 = ktime_get_ns()")
    program.add(OpKind.ALU, "delta = t1 - t0")
    program.add(OpKind.HELPER_RINGBUF, "ringbuf_output(delta)")
    return program.add(OpKind.RETURN, "XDP_TX")


def paper_variants() -> list[XdpProgram]:
    """The six programs of Figure 4, in the paper's order."""
    return [
        build_base(),
        build_ts(),
        build_ts_ts(),
        build_ts_rb(),
        build_ts_ow(),
        build_ts_d_rb(),
    ]

"""Per-flow cache/state contention model.

Section 2.1: "multiple flows sharing host resources ... lead to increased
packet processing overhead".  Each additional active flow adds per-packet
cost (its descriptor/map state competes for L1/L2) and widens the variance
(hit-or-miss behaviour).  The growth saturates once the working set
exceeds cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheContentionModel:
    """Additive per-packet penalty as a function of active flow count."""

    per_flow_mean_ns: float = 14.0
    per_flow_std_ns: float = 9.0
    saturation_flows: int = 64

    def extra_mean_ns(self, active_flows: int) -> float:
        """Mean per-packet penalty at a given flow count."""
        effective = min(max(0, active_flows - 1), self.saturation_flows)
        return effective * self.per_flow_mean_ns

    def extra_std_ns(self, active_flows: int) -> float:
        """Added per-packet standard deviation at a given flow count."""
        effective = min(max(0, active_flows - 1), self.saturation_flows)
        return effective * self.per_flow_std_ns

    def sample_ns(self, active_flows: int, rng: np.random.Generator) -> float:
        """Draw the contention penalty for one packet (>= 0)."""
        mean = self.extra_mean_ns(active_flows)
        std = self.extra_std_ns(active_flows)
        if mean == 0.0 and std == 0.0:
            return 0.0
        return max(0.0, rng.normal(mean, std))

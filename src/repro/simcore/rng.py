"""Deterministic random-number streams.

Every stochastic component of the simulation draws from a *named* stream
derived from one root seed.  Streams are independent: adding a new component
(or reordering draws inside one component) never perturbs the numbers seen by
another, so experiments stay reproducible as the model grows.

The derivation uses :class:`numpy.random.SeedSequence` spawning keyed by a
stable hash of the stream name, which is the mechanism NumPy documents for
building independent parallel streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> list[int]:
    """Map a stream name to a stable list of 32-bit words."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RandomStreams:
    """A registry of independent, reproducibly seeded generators.

    >>> streams = RandomStreams(seed=42)
    >>> link_noise = streams.stream("link/noise")
    >>> same = RandomStreams(seed=42).stream("link/noise")
    >>> bool(link_noise.integers(1 << 30) == same.integers(1 << 30))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so draws continue where they left off.
        """
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=tuple(_name_to_key(name))
            )
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child registry whose streams are independent of ours."""
        child_entropy = int.from_bytes(
            hashlib.sha256(f"{self._seed}/{name}".encode("utf-8")).digest()[:8],
            "little",
        )
        return RandomStreams(seed=child_entropy)

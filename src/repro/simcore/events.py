"""Event queue for the discrete-event simulator.

The queue is a binary heap keyed on ``(time, priority, sequence)``.  The
monotonically increasing sequence number makes ordering *total* and therefore
deterministic: two events scheduled for the same instant and priority always
fire in scheduling order, independent of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Default scheduling priority.  Lower values fire first at equal times.
PRIORITY_NORMAL = 0

#: Priority for housekeeping that must run before normal events at an instant
#: (e.g. TSN gate state changes must precede transmissions at the same tick).
PRIORITY_HIGH = -10

#: Priority for observers that must see the final state of an instant.
PRIORITY_LOW = 10


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, sequence)`` so they can live directly
    in a heap.  The callback and its argument are excluded from comparison.
    """

    time: int
    priority: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancellation is O(1); the heap entry is lazily discarded.
        """
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> int | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

"""Event scheduling backends for the discrete-event simulator.

Events are totally ordered by ``(time, priority, sequence)``.  The
monotonically increasing sequence number makes ordering *total* and
therefore deterministic: two events scheduled for the same instant and
priority always fire in scheduling order, independent of backend
internals.

Two interchangeable backends implement the :class:`Scheduler` protocol:

- :class:`EventQueue` — the reference backend, a single binary heap.
  Simple, obviously correct, O(log n) per operation.
- :class:`CalendarQueue` — the default backend, a bucket (calendar)
  queue: events are grouped into per-timestamp buckets and only the
  *distinct timestamps* live in a small heap.  Pushing into an existing
  bucket is O(1), popping is O(1) amortized, and no Python-level
  ``Event`` comparisons happen at all — the heap holds bare integers.
  Both backends pop in exactly the same ``(time, priority, sequence)``
  order; ``tests/properties`` asserts the equivalence on randomized
  workloads.

Both backends maintain a free list of fired :class:`Event` objects so
steady-state simulation allocates no new events.  Recycling is guarded
by a CPython reference-count check (:func:`_refcount_is_private`): an
event is only returned to the pool when the scheduler can prove no
outside code still holds it, so a retained handle (e.g. a watchdog's
pending-timeout event) is never reused under the holder's feet.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

#: Default scheduling priority.  Lower values fire first at equal times.
PRIORITY_NORMAL = 0

#: Priority for housekeeping that must run before normal events at an instant
#: (e.g. TSN gate state changes must precede transmissions at the same tick).
PRIORITY_HIGH = -10

#: Priority for observers that must see the final state of an instant.
PRIORITY_LOW = 10


class Event:
    """A scheduled callback, ordered by ``(time, priority, sequence)``.

    Slotted and pooled: after an event fires, the scheduler may reuse the
    object for a later ``push``.  Holding an event reference keeps it out
    of the pool (the recycler checks the reference count), so retained
    handles stay valid; :meth:`cancel` is only meaningful while the event
    is still pending.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled")

    def __init__(
        self,
        time: int,
        priority: int,
        sequence: int,
        callback: Callable[[], Any],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancellation is O(1); the backend lazily discards the entry.
        """
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(t={self.time}, prio={self.priority}, "
            f"seq={self.sequence}{state})"
        )


@runtime_checkable
class Scheduler(Protocol):
    """The pluggable event-scheduling backend behind :class:`Simulator`.

    Implementations must pop in ``(time, priority, sequence)`` order and
    support lazy cancellation.  ``pop_batch``/``requeue``/``batch_dirty``
    exist so the simulator run loop can drain all events of one instant
    in a single call (batched timer firing) while staying bit-identical
    with one-at-a-time popping.
    """

    #: Set by ``push`` whenever an event lands at or before the time of
    #: the batch currently being drained (see :meth:`pop_batch`).
    batch_dirty: bool

    def push(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        ...

    def pop(self) -> Event:
        """Remove and return the earliest live event (IndexError if none)."""
        ...

    def pop_batch(self, until: int | None = None) -> list[Event]:
        """Remove and return *all* live events at the earliest instant.

        Returns ``[]`` when the queue is drained or the earliest event
        lies beyond ``until``.  Resets :attr:`batch_dirty`; a subsequent
        ``push`` at or before the batch's time sets it again, signalling
        the caller to :meth:`requeue` the unexecuted remainder so the
        total order is preserved.
        """
        ...

    def requeue(self, events: Iterable[Event | None]) -> None:
        """Reinsert not-yet-executed batch events, keeping their order keys."""
        ...

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if empty."""
        ...

    def reclaim(self, event: Event) -> None:
        """Offer a fired event back to the free pool (best effort)."""
        ...

    def __len__(self) -> int:
        ...

    def __bool__(self) -> bool:
        ...

    def clear(self) -> None:
        ...


_getrefcount = getattr(sys, "getrefcount", None)
#: Reference count of an event that only the recycling call chain holds:
#: the caller's local, the ``reclaim`` parameter, and the argument slot of
#: ``getrefcount`` itself.  Only meaningful on CPython; elsewhere pooling
#: is disabled (``_getrefcount is None`` short-circuits ``reclaim``).
_PRIVATE_REFS = 3

#: Reference count seen when the run loop inlines the reclaim check in
#: its own frame: the loop's local binding plus ``getrefcount``'s argument
#: slot — one fewer than ``_PRIVATE_REFS``, which also counts the
#: ``reclaim`` parameter.
_INLINE_REFS = 2

#: Cap on pooled events per scheduler, bounding worst-case retention.
#: Sized for bursty workloads: an ML frame fanning out across hundreds of
#: clients parks tens of thousands of events at one instant, and a pool
#: smaller than the peak turns every post-burst push into a fresh
#: allocation (~100 bytes per pooled event, so ~3 MB worst case).
_POOL_LIMIT = 32768


class _PooledEvents:
    """Shared free-list machinery for scheduler backends."""

    __slots__ = ("_free", "_sequence")

    def __init__(self) -> None:
        self._free: list[Event] = []
        self._sequence = 0

    def _new_event(
        self, time: int, callback: Callable[[], Any], priority: int
    ) -> Event:
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
            return event
        return Event(time, priority, sequence, callback)

    def reclaim(self, event: Event) -> None:
        """Pool ``event`` iff no outside reference keeps it alive."""
        if _getrefcount is None or _getrefcount(event) != _PRIVATE_REFS:
            return
        event.callback = None
        if len(self._free) < _POOL_LIMIT:
            self._free.append(event)


class EventQueue(_PooledEvents):
    """The reference backend: a deterministic binary heap of events."""

    __slots__ = ("_heap", "_drain_time", "batch_dirty")

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[Event] = []
        self._drain_time = -1
        self.batch_dirty = False

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = self._new_event(time, callback, priority)
        heapq.heappush(self._heap, event)
        if time <= self._drain_time:
            self.batch_dirty = True
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                return event
            self.reclaim(event)
        raise IndexError("pop from empty event queue")

    def pop_batch(self, until: int | None = None) -> list[Event]:
        heap = self._heap
        while heap and heap[0].cancelled:
            # Bind a local before reclaiming: the refcount guard counts on
            # exactly one caller-held reference (see _PRIVATE_REFS).
            event = heapq.heappop(heap)
            self.reclaim(event)
        if not heap:
            return []
        time = heap[0].time
        if until is not None and time > until:
            return []
        batch: list[Event] = []
        while heap and heap[0].time == time:
            event = heapq.heappop(heap)
            if event.cancelled:
                self.reclaim(event)
            else:
                batch.append(event)
        self._drain_time = time
        self.batch_dirty = False
        return batch

    def requeue(self, events: Iterable[Event | None]) -> None:
        heap = self._heap
        for event in events:
            if event is not None and not event.cancelled:
                heapq.heappush(heap, event)

    def peek_time(self) -> int | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            # Local binding keeps the refcount guard honest (_PRIVATE_REFS).
            event = heapq.heappop(heap)
            self.reclaim(event)
        if not heap:
            return None
        return heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._drain_time = -1
        self.batch_dirty = False


class _Bucket:
    """All events of one timestamp, consumed front to back."""

    __slots__ = ("events", "head", "ordered")

    def __init__(self, event: Event) -> None:
        self.events: list[Event | None] = [event]
        self.head = 0
        #: Whether ``events[head:]`` is sorted by ``(priority, sequence)``.
        self.ordered = True


def _bucket_key(event: Event) -> tuple[int, int]:
    return (event.priority, event.sequence)


class CalendarQueue(_PooledEvents):
    """Bucketed (calendar-style) scheduler, the default backend.

    Events are grouped by exact timestamp; only the distinct pending
    timestamps live in a heap of plain integers.  A timestamp holding a
    single event — by far the common case in network workloads — is
    stored as the bare :class:`Event` and only promoted to a
    :class:`_Bucket` when a second event lands on the same instant.
    Within a bucket events are appended in sequence order and lazily
    re-sorted by ``(priority, sequence)`` only when a push actually
    violates that order — which in practice means only when mixed
    priorities land on one instant.
    """

    __slots__ = ("_buckets", "_times", "_drain_time", "batch_dirty")

    def __init__(self) -> None:
        super().__init__()
        #: time -> single Event, or a _Bucket once an instant has >1.
        self._buckets: dict[int, Event | _Bucket] = {}
        self._times: list[int] = []
        self._drain_time = -1
        self.batch_dirty = False

    def __len__(self) -> int:
        count = 0
        for entry in self._buckets.values():
            if entry.__class__ is _Bucket:
                count += sum(
                    1
                    for event in entry.events[entry.head :]
                    if event is not None and not event.cancelled
                )
            elif not entry.cancelled:
                count += 1
        return count

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        # Inlined _new_event: this is the hottest allocation site.
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
        else:
            event = Event(time, priority, sequence, callback)
        buckets = self._buckets
        entry = buckets.get(time)
        if entry is None:
            buckets[time] = event
            heapq.heappush(self._times, time)
        elif entry.__class__ is _Bucket:
            events = entry.events
            last = events[-1]
            # A fresh event always carries the largest sequence number, so
            # append order only breaks when its priority is more urgent.
            if last is not None and priority < last.priority:
                entry.ordered = False
            events.append(event)
        else:
            # Promote the singleton entry to a real bucket.
            bucket = _Bucket(entry)
            if priority < entry.priority:
                bucket.ordered = False
            bucket.events.append(event)
            buckets[time] = bucket
        if time <= self._drain_time:
            self.batch_dirty = True
        return event

    def _insert_existing(self, event: Event) -> None:
        """Reinsert an event that keeps its original ``sequence``."""
        time = event.time
        buckets = self._buckets
        entry = buckets.get(time)
        if entry is None:
            buckets[time] = event
            heapq.heappush(self._times, time)
        elif entry.__class__ is _Bucket:
            events = entry.events
            last = events[-1]
            if last is not None and _bucket_key(event) < _bucket_key(last):
                entry.ordered = False
            events.append(event)
        else:
            bucket = _Bucket(entry)
            if _bucket_key(event) < _bucket_key(entry):
                bucket.ordered = False
            bucket.events.append(event)
            buckets[time] = bucket

    def _live_head(self) -> tuple[int, Event | _Bucket] | None:
        """Earliest entry with a live event, or ``None``.

        Drops exhausted buckets and skips cancelled events on the way.
        Returns the raw dict entry: a bare :class:`Event` for singleton
        instants, a positioned :class:`_Bucket` otherwise.
        """
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            entry = buckets[time]
            if entry.__class__ is not _Bucket:
                if not entry.cancelled:
                    return time, entry
                heapq.heappop(times)
                del buckets[time]
                self.reclaim(entry)
                continue
            bucket = entry
            events = bucket.events
            if not bucket.ordered:
                tail = events[bucket.head :]
                tail.sort(key=_bucket_key)
                events[bucket.head :] = tail
                bucket.ordered = True
            head = bucket.head
            size = len(events)
            while head < size:
                event = events[head]
                if event is not None and not event.cancelled:
                    bucket.head = head
                    return time, bucket
                events[head] = None
                head += 1
                if event is not None:
                    self.reclaim(event)
            bucket.head = head
            heapq.heappop(times)
            del buckets[time]
        return None

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        found = self._live_head()
        if found is None:
            raise IndexError("pop from empty event queue")
        time, entry = found
        if entry.__class__ is not _Bucket:
            heapq.heappop(self._times)
            del self._buckets[time]
            return entry
        head = entry.head
        event = entry.events[head]
        entry.events[head] = None
        entry.head = head + 1
        return event

    def pop_batch(self, until: int | None = None) -> list[Event]:
        times = self._times
        if not times:
            return []
        buckets = self._buckets
        time = times[0]
        entry = buckets[time]
        if entry.__class__ is not _Bucket and not entry.cancelled:
            # Fast path: a live singleton at the head, no scan needed.
            if until is not None and time > until:
                return []
            heapq.heappop(times)
            del buckets[time]
            self._drain_time = time
            self.batch_dirty = False
            return [entry]
        found = self._live_head()
        if found is None:
            return []
        time, entry = found
        if until is not None and time > until:
            return []
        # The whole instant is consumed: retire it so same-instant pushes
        # made by batch callbacks start a fresh entry (and set
        # ``batch_dirty`` via the ``_drain_time`` check in push).
        heapq.heappop(self._times)
        del self._buckets[time]
        self._drain_time = time
        self.batch_dirty = False
        if entry.__class__ is not _Bucket:
            return [entry]
        return [
            event
            for event in entry.events[entry.head :]
            if event is not None and not event.cancelled
        ]

    def requeue(self, events: Iterable[Event | None]) -> None:
        for event in events:
            if event is not None and not event.cancelled:
                self._insert_existing(event)

    def peek_time(self) -> int | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        found = self._live_head()
        if found is None:
            return None
        return found[0]

    def clear(self) -> None:
        """Drop every pending event."""
        self._buckets.clear()
        self._times.clear()
        self._drain_time = -1
        self.batch_dirty = False


#: Name -> backend class.  ``Simulator(scheduler=...)`` resolves through
#: this registry, so downstream code can register additional backends.
SCHEDULERS: dict[str, Callable[[], "Scheduler"]] = {
    "heap": EventQueue,
    "calendar": CalendarQueue,
}

#: The backend used when ``Simulator`` is constructed without an explicit
#: choice (overridable via the ``REPRO_SIM_SCHEDULER`` environment
#: variable, checked at Simulator construction).
DEFAULT_SCHEDULER = "calendar"


def make_scheduler(name: str) -> "Scheduler":
    """Instantiate a scheduler backend by registry name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(
            f"unknown scheduler backend {name!r} (known: {known})"
        ) from None
    return factory()

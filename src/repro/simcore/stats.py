"""Execution statistics for the simulation kernel.

Every :class:`~repro.simcore.simulator.Simulator` owns a :class:`SimStats`
counter block (``sim.stats``) that the event loop updates as it runs.  The
:func:`collect` context manager aggregates the stats of *every* simulator
constructed inside its ``with`` block, which is how the experiment runner
(:mod:`repro.runner`) attributes event counts to a figure job without
threading a handle through every model layer::

    with collect() as stats:
        rows = fig5(seed=0)          # builds Simulators internally
    print(stats.events_executed)     # total across all of them

Collection is scoped by a simple module-level stack, so nested ``collect``
blocks each see the simulators created within them.

The fast-path event loop keeps a *local* executed counter and flushes it
into ``sim.stats.events_executed`` when ``run`` returns (including on
exceptions), so there is **zero** per-event stats overhead while the loop
runs.  Consequence: ``sim.stats`` read from *inside* a callback lags by
the events of the current ``run``; read it between runs (as ``collect``
does — it fills its block in when the ``with`` exits) for exact totals.
``events_scheduled`` is still incremented at ``schedule`` time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator


@dataclass
class SimStats:
    """Counters maintained by the simulator's event loop.

    ``sim_time_ns`` is the furthest simulated instant reached; when stats
    blocks are merged it is the maximum, while every other field is summed.
    """

    simulators: int = 0
    events_scheduled: int = 0
    events_executed: int = 0
    processes_started: int = 0
    sim_time_ns: int = 0

    def merge(self, other: "SimStats") -> None:
        """Fold ``other`` into this block (sum counters, max sim time)."""
        self.simulators += other.simulators
        self.events_scheduled += other.events_scheduled
        self.events_executed += other.events_executed
        self.processes_started += other.processes_started
        self.sim_time_ns = max(self.sim_time_ns, other.sim_time_ns)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for JSON manifests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Stack of open ``collect`` buckets; each bucket gathers the simulators
#: constructed while it is on the stack.
_buckets: list[list["Simulator"]] = []


def _register(sim: "Simulator") -> None:
    """Called by ``Simulator.__init__`` to join every open collection."""
    for bucket in _buckets:
        bucket.append(sim)


@contextmanager
def collect() -> Iterator[SimStats]:
    """Aggregate stats from all simulators created inside the block.

    The yielded :class:`SimStats` is filled in when the block exits; reading
    it earlier shows zeros.
    """
    bucket: list["Simulator"] = []
    _buckets.append(bucket)
    total = SimStats()
    try:
        yield total
    finally:
        _buckets.remove(bucket)
        for sim in bucket:
            total.merge(sim.stats)

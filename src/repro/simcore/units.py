"""Time units for the simulation kernel.

Simulated time is an integer number of **nanoseconds**.  Integer time keeps
event ordering exact and reproducible, which matters in a domain where the
paper's headline timing requirement is *1 microsecond of jitter* (Section
2.1): floating-point time would accumulate rounding error at exactly the
scale under study.

Usage::

    from repro.simcore.units import MS, US

    sim.schedule(callback, after=5 * MS)
    cycle_time = 250 * US
"""

from __future__ import annotations

#: One nanosecond (the base tick).
NS: int = 1

#: One microsecond in nanoseconds.
US: int = 1_000

#: One millisecond in nanoseconds.
MS: int = 1_000_000

#: One second in nanoseconds.
SEC: int = 1_000_000_000

#: One minute in nanoseconds.
MINUTE: int = 60 * SEC

#: One hour in nanoseconds.
HOUR: int = 60 * MINUTE


def ns_to_us(value_ns: int) -> float:
    """Convert nanoseconds to (fractional) microseconds."""
    return value_ns / US


def ns_to_ms(value_ns: int) -> float:
    """Convert nanoseconds to (fractional) milliseconds."""
    return value_ns / MS


def ns_to_s(value_ns: int) -> float:
    """Convert nanoseconds to (fractional) seconds."""
    return value_ns / SEC


def us_to_ns(value_us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(value_us * US)


def ms_to_ns(value_ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(value_ms * MS)


def s_to_ns(value_s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(value_s * SEC)


def format_duration(value_ns: int) -> str:
    """Render a duration with a human-appropriate unit.

    >>> format_duration(1500)
    '1.500us'
    >>> format_duration(2_000_000)
    '2.000ms'
    """
    magnitude = abs(value_ns)
    if magnitude >= SEC:
        return f"{value_ns / SEC:.3f}s"
    if magnitude >= MS:
        return f"{value_ns / MS:.3f}ms"
    if magnitude >= US:
        return f"{value_ns / US:.3f}us"
    return f"{value_ns}ns"

"""Simulated clocks: drift, granularity, and PTP-style synchronization.

The paper's Traffic Reflection method (Section 3) exists precisely because
*multi-clock* measurements are unreliable: IEEE 1588 PTP reaches sub-1 us
accuracy but suffers from asymmetric path delays, while a hardware tap stamps
both directions with a single clock at 8 ns granularity.  These models let
the reproduction quantify that difference.

A :class:`Clock` maps true simulation time to the time the clock *reads*:

``reading(t) = quantize(offset + (1 + drift_ppm * 1e-6) * t + noise)``
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Clock:
    """A free-running clock with offset, drift, noise, and granularity.

    Parameters
    ----------
    offset_ns:
        Constant offset from true time.
    drift_ppm:
        Frequency error in parts per million (positive = runs fast).
    granularity_ns:
        Timestamp quantization step.  A hardware tap has ~8 ns; a TSC-based
        software clock effectively ~1 ns; a jiffy clock much coarser.
    noise_std_ns:
        Gaussian read noise standard deviation.
    """

    name: str = "clock"
    offset_ns: float = 0.0
    drift_ppm: float = 0.0
    granularity_ns: int = 1
    noise_std_ns: float = 0.0
    rng: np.random.Generator | None = field(default=None, repr=False)

    def read(self, true_time_ns: int) -> int:
        """Return this clock's reading at the given true time."""
        value = self.offset_ns + (1.0 + self.drift_ppm * 1e-6) * true_time_ns
        if self.noise_std_ns > 0.0:
            if self.rng is None:
                # Lazily create ONE generator and keep it: a fresh
                # default_rng(0) per read would hand every noisy read the
                # same noise sample.  Seed from the clock name so distinct
                # unseeded clocks draw independent, reproducible streams.
                digest = hashlib.blake2s(self.name.encode(), digest_size=8)
                seed = int.from_bytes(digest.digest(), "little")
                self.rng = np.random.default_rng(seed)
            value += self.rng.normal(0.0, self.noise_std_ns)
        if self.granularity_ns > 1:
            value = round(value / self.granularity_ns) * self.granularity_ns
        return int(round(value))

    def error_at(self, true_time_ns: int) -> float:
        """Deterministic clock error (reading minus truth) ignoring noise."""
        return self.offset_ns + self.drift_ppm * 1e-6 * true_time_ns


@dataclass
class PtpSyncModel:
    """IEEE 1588 synchronization residual-error model.

    After a PTP sync exchange the slave's residual offset is dominated by the
    *asymmetry* between master->slave and slave->master path delays (the
    protocol can only estimate the mean path delay), plus timestamping noise.
    Between syncs the offset grows with residual drift.

    This reproduces the paper's point that PTP "encounters challenges related
    to asymmetric delays and network inconsistencies" despite sub-1 us
    nominal accuracy.
    """

    sync_interval_ns: int = 1_000_000_000
    path_asymmetry_ns: float = 200.0
    timestamp_noise_ns: float = 50.0
    residual_drift_ppm: float = 0.05

    def residual_error_ns(
        self, time_since_sync_ns: int, rng: np.random.Generator
    ) -> float:
        """Sample the slave-clock error at a time after the last sync."""
        asymmetry = self.path_asymmetry_ns / 2.0
        noise = rng.normal(0.0, self.timestamp_noise_ns)
        drift = self.residual_drift_ppm * 1e-6 * time_since_sync_ns
        return asymmetry + noise + drift

    def synchronized_clock(
        self, name: str, rng: np.random.Generator
    ) -> Clock:
        """Create a clock whose parameters reflect post-sync residuals."""
        return Clock(
            name=name,
            offset_ns=self.path_asymmetry_ns / 2.0,
            drift_ppm=self.residual_drift_ppm,
            noise_std_ns=self.timestamp_noise_ns,
            granularity_ns=1,
            rng=rng,
        )


def tap_clock(name: str = "tap", granularity_ns: int = 8) -> Clock:
    """The single-clock hardware tap of Section 3 (8 ns timestamping)."""
    return Clock(name=name, granularity_ns=granularity_ns)

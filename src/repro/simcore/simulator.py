"""The discrete-event simulator.

:class:`Simulator` owns the clock (integer nanoseconds, see
:mod:`repro.simcore.units`), a pluggable event-scheduler backend (see
:mod:`repro.simcore.events`), and a registry of named random streams.
Components interact with it in two styles:

1. **Callbacks** — ``sim.schedule(fn, after=delay)`` /
   ``sim.schedule(fn, at=t)``.
2. **Processes** — generator coroutines driven by :class:`Process`, which
   ``yield`` delays (``int`` nanoseconds) or :class:`Signal` objects.

Both styles coexist; the fieldbus and PLC models use processes for their
cyclic behaviour, while packet forwarding uses plain callbacks.

The event loop has two paths.  With no profiler attached and no tracer
active, :meth:`Simulator.run` takes a zero-overhead fast path: events of
one instant are drained in a single batched scheduler call, fired events
are recycled into the scheduler's free pool, and no observability code
runs at all.  With a profiler or tracer active it falls back to the
instrumented per-event loop.
"""

from __future__ import annotations

import heapq
import os
import warnings
from typing import Any, Callable, Generator, Iterable

from ..obs import runtime as _obs
from ..obs.tracing import NULL_TRACER
from .events import (
    CalendarQueue,
    DEFAULT_SCHEDULER,
    Event,
    PRIORITY_NORMAL,
    Scheduler,
    _Bucket,
    _INLINE_REFS,
    _POOL_LIMIT,
    _getrefcount,
    make_scheduler,
)
from .rng import RandomStreams
from .stats import SimStats, _register

_LEGACY_SCHEDULE_MSG = (
    "Simulator.schedule(delay, callback) is deprecated; use "
    "sim.schedule(callback, after=delay, priority=...) instead"
)
_LEGACY_SCHEDULE_AT_MSG = (
    "Simulator.schedule_at(time, callback) is deprecated; use "
    "sim.schedule(callback, at=time, priority=...) instead"
)


def obs_trace_sink(time_ns: int, message: str) -> None:
    """Forward a trace message to the active observability tracer.

    This is the default :attr:`Simulator.default_sink`: with an
    :func:`repro.obs.capture` scope open, messages become instant events on
    the trace timeline; with observability off the active tracer is the
    null tracer and the call is a no-op (the documented ``NullSink``
    behaviour).
    """
    _obs.get_tracer().instant("sim.trace", message=message, sim_time_ns=time_ns)


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


class Signal:
    """A broadcast condition that processes can wait on.

    ``wait()`` inside a process suspends it until someone calls
    :meth:`fire`.  The value passed to ``fire`` is delivered as the result of
    the ``yield``.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._waiters: list[Process] = []

    def fire(self, value: Any = None) -> None:
        """Wake every waiting process at the current instant."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(lambda p=process: p._resume(value))

    def _register(self, process: "Process") -> None:
        self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A generator coroutine scheduled on the simulator.

    The generator may yield:

    - ``int`` — sleep that many nanoseconds;
    - :class:`Signal` — suspend until the signal fires;
    - ``None`` — yield the floor (resume at the same instant, after other
      pending events at this time).
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name or repr(generator)
        self.alive = True
        self.result: Any = None
        self._pending_event: Event | None = None
        self.finished = Signal(sim, name=f"{self.name}/finished")

    def start(self) -> "Process":
        """Schedule the first step at the current instant."""
        self._pending_event = self._sim.schedule(lambda: self._resume(None))
        return self

    def stop(self) -> None:
        """Terminate the process without running it further."""
        if not self.alive:
            return
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._generator.close()
        self.finished.fire(None)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self._pending_event = self._sim.schedule(
                lambda: self._resume(None)
            )
        elif isinstance(command, int):
            if command < 0:
                raise SimulationError(
                    f"process {self.name} yielded negative delay {command}"
                )
            self._pending_event = self._sim.schedule(
                lambda: self._resume(None), after=command
            )
        elif isinstance(command, Signal):
            command._register(self)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {command!r}"
            )


def _specialize_schedule(sim: "Simulator", queue: CalendarQueue):
    """Build a ``schedule`` closure with ``CalendarQueue.push`` inlined.

    ``Simulator.__init__`` binds the result as an *instance* attribute when
    the default backend is in use, shadowing the generic method and
    removing one call boundary from the hottest path in the repo.  The
    semantics — argument validation, deprecation shims, stats accounting,
    and insertion order — are identical to :meth:`Simulator.schedule`
    followed by :meth:`CalendarQueue.push`; the scheduler-equivalence
    property suite drives both forms.
    """
    buckets = queue._buckets
    times = queue._times
    free = queue._free
    heappush = heapq.heappush
    stats = sim.stats

    def schedule(
        target: Callable[[], Any] | int,
        *legacy: Any,
        after: int | None = None,
        at: int | None = None,
        priority: int = PRIORITY_NORMAL,
        callback: Callable[[], Any] | None = None,
    ) -> Event:
        if legacy or callback is not None or not callable(target):
            return sim._schedule_legacy(target, legacy, priority, callback)
        now = sim._now
        if after is not None:
            if at is not None:
                raise TypeError(
                    "schedule() takes either 'after' or 'at', not both"
                )
            if after < 0:
                raise SimulationError(f"negative delay {after}")
            time = now + after
        elif at is None:
            time = now
        else:
            if at < now:
                raise SimulationError(
                    f"cannot schedule at {at}, current time is {now}"
                )
            time = at
        stats.events_scheduled += 1
        # -- inlined CalendarQueue.push (time >= now >= 0 by the checks
        # above, so the push-side validation is already satisfied) ------
        sequence = queue._sequence
        queue._sequence = sequence + 1
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.sequence = sequence
            event.callback = target
            event.cancelled = False
        else:
            event = Event(time, priority, sequence, target)
        entry = buckets.get(time)
        if entry is None:
            buckets[time] = event
            heappush(times, time)
        elif entry.__class__ is _Bucket:
            events = entry.events
            last = events[-1]
            if last is not None and priority < last.priority:
                entry.ordered = False
            events.append(event)
        else:
            bucket = _Bucket(entry)
            if priority < entry.priority:
                bucket.ordered = False
            bucket.events.append(event)
            buckets[time] = bucket
        if time <= queue._drain_time:
            queue.batch_dirty = True
        return event

    schedule.__doc__ = Simulator.schedule.__doc__
    return schedule


class Simulator:
    """Deterministic discrete-event simulator with integer-ns time."""

    #: Where :meth:`trace` messages go when *no* trace hook is registered.
    #: Defaults to :func:`obs_trace_sink` (the active observability tracer,
    #: a no-op null sink when observability is off).  Assign a
    #: ``(time_ns, message)`` callable — on an instance or on the class —
    #: to redirect unhooked trace output, e.g. ``sim.default_sink = print``
    #: style debugging sinks.
    default_sink: Callable[[int, str], None] = staticmethod(obs_trace_sink)

    def __init__(
        self, seed: int = 0, *, scheduler: str | Scheduler | None = None
    ) -> None:
        self._now = 0
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SIM_SCHEDULER", DEFAULT_SCHEDULER)
        if isinstance(scheduler, str):
            self.scheduler_name = scheduler
            self._queue: Scheduler = make_scheduler(scheduler)
        else:
            self.scheduler_name = type(scheduler).__name__
            self._queue = scheduler
        # Bound-method cache: schedule() is the hottest call in the repo
        # and the `self._queue.push` attribute chase shows up in profiles.
        self._push = self._queue.push
        self.streams = RandomStreams(seed=seed)
        self._running = False
        self._trace_hooks: list[Callable[[int, str], None]] = []
        #: Event-loop counters; aggregated across simulators by
        #: :func:`repro.simcore.stats.collect`.
        self.stats = SimStats(simulators=1)
        if self._queue.__class__ is CalendarQueue:
            # Shadow the generic method with a push-inlined closure.
            self.schedule = _specialize_schedule(self, self._queue)
        #: Per-callback wall-time attribution; ``None`` (the default)
        #: keeps the event loop on the unwrapped fast path.  Set by
        #: :meth:`repro.obs.Profiler.attach` or inherited from an open
        #: ``obs.capture(profile=True)`` scope at construction.
        self._profiler = _obs.profiler_for_new_sim()
        _register(self)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        target: Callable[[], Any] | int,
        *legacy: Any,
        after: int | None = None,
        at: int | None = None,
        priority: int = PRIORITY_NORMAL,
        callback: Callable[[], Any] | None = None,
    ) -> Event:
        """Schedule ``target`` (a zero-argument callable) and return its event.

        Exactly one of the keyword-only ``after`` (relative delay in ns)
        and ``at`` (absolute time in ns) selects the firing instant;
        giving neither fires at the current instant (``after=0``).
        ``priority`` breaks ties at equal times (lower fires first)::

            sim.schedule(fn)                     # now
            sim.schedule(fn, after=5 * MS)       # relative
            sim.schedule(fn, at=deadline_ns)     # absolute
            sim.schedule(fn, after=0, priority=PRIORITY_HIGH)

        The pre-redesign positional form ``sim.schedule(delay, fn)`` still
        works but emits a :class:`DeprecationWarning`.
        """
        if legacy or callback is not None or not callable(target):
            return self._schedule_legacy(target, legacy, priority, callback)
        if after is not None:
            if at is not None:
                raise TypeError(
                    "schedule() takes either 'after' or 'at', not both"
                )
            if after < 0:
                raise SimulationError(f"negative delay {after}")
            time = self._now + after
        elif at is not None:
            if at < self._now:
                raise SimulationError(
                    f"cannot schedule at {at}, current time is {self._now}"
                )
            time = at
        else:
            time = self._now
        self.stats.events_scheduled += 1
        return self._push(time, target, priority)

    def _schedule_legacy(
        self,
        delay: Any,
        legacy: tuple[Any, ...],
        priority: int,
        callback: Callable[[], Any] | None,
    ) -> Event:
        """The deprecated ``schedule(delay, callback[, priority])`` form."""
        warnings.warn(_LEGACY_SCHEDULE_MSG, DeprecationWarning, stacklevel=3)
        if callback is None:
            if not legacy:
                raise TypeError("schedule() is missing a callback")
            callback = legacy[0]
        if len(legacy) > 1:
            priority = legacy[1]
        if not isinstance(delay, int):
            raise TypeError(
                f"schedule() expected a callable or an int delay, "
                f"got {delay!r}"
            )
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.stats.events_scheduled += 1
        return self._push(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Deprecated: use ``sim.schedule(callback, at=time)`` instead."""
        warnings.warn(
            _LEGACY_SCHEDULE_AT_MSG, DeprecationWarning, stacklevel=2
        )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        self.stats.events_scheduled += 1
        return self._push(time, callback, priority)

    def process(
        self, generator: Generator[Any, Any, Any], name: str = ""
    ) -> Process:
        """Wrap ``generator`` as a :class:`Process` and start it."""
        self.stats.processes_started += 1
        return Process(self, generator, name=name).start()

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name=name)

    # -- execution ----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  With ``until`` given, time
        advances exactly to ``until`` even if the queue drains earlier, so
        repeated ``run`` calls compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, current time is {self._now}"
            )
        self._running = True
        # Snapshot per-run observability state (attaching mid-run takes
        # effect on the next `run` call).  With no profiler and the null
        # tracer the loop below is the zero-overhead fast path.
        profiler = self._profiler
        tracer = _obs.get_tracer()
        executed = 0
        try:
            if profiler is None and tracer is NULL_TRACER:
                executed = self._run_fast(until)
                if until is not None and until > self._now:
                    self._now = until
            else:
                executed = self._run_instrumented(until, profiler, tracer)
        finally:
            self._running = False
            self.stats.events_executed += executed
            self.stats.sim_time_ns = self._now
        return self._now

    def _run_fast(self, until: int | None) -> int:
        """Uninstrumented event loop: batched firing, event recycling."""
        queue = self._queue
        if queue.__class__ is CalendarQueue and _getrefcount is not None:
            return self._run_fast_calendar(queue, until)
        pop_batch = queue.pop_batch
        requeue = queue.requeue
        reclaim = queue.reclaim
        # Inline the free-pool reclaim for our own pooled backends; a
        # foreign Scheduler (no ``_free``) falls back to its reclaim().
        grc = _getrefcount
        free = getattr(queue, "_free", None) if grc is not None else None
        executed = 0
        while True:
            batch = pop_batch(until)
            if not batch:
                break
            self._now = batch[0].time
            size = len(batch)
            if size == 1:
                # Dominant case: one event at this instant.  Drop the
                # batch list before reclaiming so the pool's refcount
                # guard sees only this frame's reference.
                event = batch[0]
                batch = None
                if not event.cancelled:
                    event.callback()
                    executed += 1
                if free is None:
                    reclaim(event)
                elif grc(event) == _INLINE_REFS:
                    event.callback = None
                    if len(free) < _POOL_LIMIT:
                        free.append(event)
                continue
            index = 0
            while index < size:
                event = batch[index]
                batch[index] = None  # drop the list's ref so reclaim works
                index += 1
                if event.cancelled:
                    # Cancelled mid-batch by an earlier callback.
                    reclaim(event)
                    continue
                callback = event.callback
                callback()
                executed += 1
                reclaim(event)
                if queue.batch_dirty and index < size:
                    # A callback scheduled at (or before) this instant; the
                    # new event may order before the unexecuted remainder,
                    # so push the rest back and re-pop the merged batch.
                    requeue(batch[index:])
                    break
        return executed

    def _run_fast_calendar(
        self, queue: CalendarQueue, until: int | None
    ) -> int:
        """:meth:`_run_fast` specialised for the default backend.

        The dominant shape — a live singleton event at the head instant —
        is popped and recycled entirely inside this frame, skipping the
        ``pop_batch``/``reclaim`` calls and the one-element batch list.
        Multi-event instants and cancelled heads fall back to the generic
        batched drain, so the firing order is identical to
        :meth:`_run_fast` on any backend.
        """
        times = queue._times
        buckets = queue._buckets
        free = queue._free
        pop_batch = queue.pop_batch
        requeue = queue.requeue
        reclaim = queue.reclaim
        heappop = heapq.heappop
        grc = _getrefcount
        executed = 0
        while times:
            time = times[0]
            entry = buckets[time]
            if entry.__class__ is _Bucket or entry.cancelled:
                # Rare shapes: multi-event instant or a cancelled head.
                # Drop our handle on the bucket first — it pins every
                # batch event and would defeat the reclaim refcount guard.
                entry = None
                batch = pop_batch(until)
                if not batch:
                    break
                self._now = batch[0].time
                size = len(batch)
                index = 0
                while index < size:
                    event = batch[index]
                    batch[index] = None
                    index += 1
                    if event.cancelled:
                        reclaim(event)
                        continue
                    event.callback()
                    executed += 1
                    reclaim(event)
                    if queue.batch_dirty and index < size:
                        requeue(batch[index:])
                        break
                continue
            if until is not None and time > until:
                break
            heappop(times)
            del buckets[time]
            queue._drain_time = time
            queue.batch_dirty = False
            self._now = time
            entry.callback()
            executed += 1
            # Inlined reclaim (see events._INLINE_REFS): pool the event
            # unless outside code still holds a reference to it.
            if grc(entry) == _INLINE_REFS:
                entry.callback = None
                if len(free) < _POOL_LIMIT:
                    free.append(entry)
        return executed

    def _run_instrumented(
        self, until: int | None, profiler, tracer
    ) -> int:
        """Per-event loop with tracer span and profiler attribution."""
        queue = self._queue
        executed = 0
        span = tracer.span("sim.run", start_ns=self._now, until_ns=until)
        with span:
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = queue.pop()
                self._now = event.time
                executed += 1
                if profiler is None:
                    event.callback()
                else:
                    profiler.run_event(event.callback)
            if until is not None and until > self._now:
                self._now = until
            span.set(
                end_ns=self._now,
                events=self.stats.events_executed + executed,
            )
        return executed

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        self.stats.events_executed += 1
        self.stats.sim_time_ns = self._now
        if self._profiler is None:
            event.callback()
        else:
            self._profiler.run_event(event.callback)
        return True

    @property
    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    # -- tracing ------------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[int, str], None]) -> None:
        """Register a ``hook(time_ns, message)`` called by :meth:`trace`.

        Hooks are invoked in registration order.  While at least one hook
        is registered, hooks replace :attr:`default_sink`.
        """
        self._trace_hooks.append(hook)

    def trace(self, message: str) -> None:
        """Emit a trace message.

        With hooks registered, every hook receives ``(now, message)`` in
        registration order.  With none, the message goes to
        :attr:`default_sink` instead of being silently dropped — by default
        that routes it into the observability layer (an instant event on
        the active tracer; a no-op when observability is off).
        """
        hooks = self._trace_hooks
        if hooks:
            for hook in hooks:
                hook(self._now, message)
        else:
            self.default_sink(self._now, message)


def every(
    sim: Simulator,
    period: int,
    action: Callable[[], Any],
    start: int = 0,
    jitter_fn: Callable[[], int] | None = None,
) -> Process:
    """Start a process that invokes ``action`` every ``period`` ns.

    ``jitter_fn``, when given, returns an extra (non-negative) delay added to
    each activation — used to model release jitter of periodic tasks.
    """

    def _loop() -> Iterable[Any]:
        if start:
            yield start
        while True:
            if jitter_fn is not None:
                extra = jitter_fn()
                if extra:
                    yield extra
                action()
                remaining = period - extra
                yield max(0, remaining)
            else:
                action()
                yield period

    return sim.process(_loop(), name=f"every({period})")

"""The discrete-event simulator.

:class:`Simulator` owns the clock (integer nanoseconds, see
:mod:`repro.simcore.units`), the event queue, and a registry of named random
streams.  Components interact with it in two styles:

1. **Callbacks** — ``sim.schedule(delay, fn)`` / ``sim.schedule_at(t, fn)``.
2. **Processes** — generator coroutines driven by :class:`Process`, which
   ``yield`` delays (``int`` nanoseconds) or :class:`Signal` objects.

Both styles coexist; the fieldbus and PLC models use processes for their
cyclic behaviour, while packet forwarding uses plain callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from ..obs import runtime as _obs
from .events import Event, EventQueue, PRIORITY_NORMAL
from .rng import RandomStreams
from .stats import SimStats, _register


def obs_trace_sink(time_ns: int, message: str) -> None:
    """Forward a trace message to the active observability tracer.

    This is the default :attr:`Simulator.default_sink`: with an
    :func:`repro.obs.capture` scope open, messages become instant events on
    the trace timeline; with observability off the active tracer is the
    null tracer and the call is a no-op (the documented ``NullSink``
    behaviour).
    """
    _obs.get_tracer().instant("sim.trace", message=message, sim_time_ns=time_ns)


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


class Signal:
    """A broadcast condition that processes can wait on.

    ``wait()`` inside a process suspends it until someone calls
    :meth:`fire`.  The value passed to ``fire`` is delivered as the result of
    the ``yield``.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._waiters: list[Process] = []

    def fire(self, value: Any = None) -> None:
        """Wake every waiting process at the current instant."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0, lambda p=process: p._resume(value))

    def _register(self, process: "Process") -> None:
        self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A generator coroutine scheduled on the simulator.

    The generator may yield:

    - ``int`` — sleep that many nanoseconds;
    - :class:`Signal` — suspend until the signal fires;
    - ``None`` — yield the floor (resume at the same instant, after other
      pending events at this time).
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name or repr(generator)
        self.alive = True
        self.result: Any = None
        self._pending_event: Event | None = None
        self.finished = Signal(sim, name=f"{self.name}/finished")

    def start(self) -> "Process":
        """Schedule the first step at the current instant."""
        self._pending_event = self._sim.schedule(0, lambda: self._resume(None))
        return self

    def stop(self) -> None:
        """Terminate the process without running it further."""
        if not self.alive:
            return
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._generator.close()
        self.finished.fire(None)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self._pending_event = self._sim.schedule(
                0, lambda: self._resume(None)
            )
        elif isinstance(command, int):
            if command < 0:
                raise SimulationError(
                    f"process {self.name} yielded negative delay {command}"
                )
            self._pending_event = self._sim.schedule(
                command, lambda: self._resume(None)
            )
        elif isinstance(command, Signal):
            command._register(self)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {command!r}"
            )


class Simulator:
    """Deterministic discrete-event simulator with integer-ns time."""

    #: Where :meth:`trace` messages go when *no* trace hook is registered.
    #: Defaults to :func:`obs_trace_sink` (the active observability tracer,
    #: a no-op null sink when observability is off).  Assign a
    #: ``(time_ns, message)`` callable — on an instance or on the class —
    #: to redirect unhooked trace output, e.g. ``sim.default_sink = print``
    #: style debugging sinks.
    default_sink: Callable[[int, str], None] = staticmethod(obs_trace_sink)

    def __init__(self, seed: int = 0) -> None:
        self._now = 0
        self._queue = EventQueue()
        self.streams = RandomStreams(seed=seed)
        self._running = False
        self._trace_hooks: list[Callable[[int, str], None]] = []
        #: Event-loop counters; aggregated across simulators by
        #: :func:`repro.simcore.stats.collect`.
        self.stats = SimStats(simulators=1)
        #: Per-callback wall-time attribution; ``None`` (the default)
        #: keeps the event loop on the unwrapped fast path.  Set by
        #: :meth:`repro.obs.Profiler.attach` or inherited from an open
        #: ``obs.capture(profile=True)`` scope at construction.
        self._profiler = _obs.profiler_for_new_sim()
        _register(self)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Run ``callback`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.stats.events_scheduled += 1
        return self._queue.push(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Run ``callback`` at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        self.stats.events_scheduled += 1
        return self._queue.push(time, callback, priority)

    def process(
        self, generator: Generator[Any, Any, Any], name: str = ""
    ) -> Process:
        """Wrap ``generator`` as a :class:`Process` and start it."""
        self.stats.processes_started += 1
        return Process(self, generator, name=name).start()

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name=name)

    # -- execution ----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  With ``until`` given, time
        advances exactly to ``until`` even if the queue drains earlier, so
        repeated ``run`` calls compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, current time is {self._now}"
            )
        self._running = True
        # Snapshot per-run observability state: `profiler` keeps the hot
        # loop to one local-variable check per event (attaching mid-run
        # takes effect on the next `run` call).
        profiler = self._profiler
        span = _obs.get_tracer().span(
            "sim.run", start_ns=self._now, until_ns=until
        )
        try:
            with span:
                while True:
                    next_time = self._queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        break
                    event = self._queue.pop()
                    self._now = event.time
                    self.stats.events_executed += 1
                    if profiler is None:
                        event.callback()
                    else:
                        profiler.run_event(event.callback)
                if until is not None:
                    self._now = max(self._now, until)
                span.set(end_ns=self._now, events=self.stats.events_executed)
        finally:
            self._running = False
            self.stats.sim_time_ns = self._now
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        self.stats.events_executed += 1
        self.stats.sim_time_ns = self._now
        if self._profiler is None:
            event.callback()
        else:
            self._profiler.run_event(event.callback)
        return True

    @property
    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    # -- tracing ------------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[int, str], None]) -> None:
        """Register a ``hook(time_ns, message)`` called by :meth:`trace`.

        Hooks are invoked in registration order.  While at least one hook
        is registered, hooks replace :attr:`default_sink`.
        """
        self._trace_hooks.append(hook)

    def trace(self, message: str) -> None:
        """Emit a trace message.

        With hooks registered, every hook receives ``(now, message)`` in
        registration order.  With none, the message goes to
        :attr:`default_sink` instead of being silently dropped — by default
        that routes it into the observability layer (an instant event on
        the active tracer; a no-op when observability is off).
        """
        hooks = self._trace_hooks
        if hooks:
            for hook in hooks:
                hook(self._now, message)
        else:
            self.default_sink(self._now, message)


def every(
    sim: Simulator,
    period: int,
    action: Callable[[], Any],
    start: int = 0,
    jitter_fn: Callable[[], int] | None = None,
) -> Process:
    """Start a process that invokes ``action`` every ``period`` ns.

    ``jitter_fn``, when given, returns an extra (non-negative) delay added to
    each activation — used to model release jitter of periodic tasks.
    """

    def _loop() -> Iterable[Any]:
        if start:
            yield start
        while True:
            if jitter_fn is not None:
                extra = jitter_fn()
                if extra:
                    yield extra
                action()
                remaining = period - extra
                yield max(0, remaining)
            else:
                action()
                yield period

    return sim.process(_loop(), name=f"every({period})")

"""Deterministic discrete-event simulation kernel.

Public API:

- :class:`Simulator` — event loop with integer-nanosecond time.
- :class:`Process` / :class:`Signal` — generator-coroutine processes.
- :class:`EventQueue` / :class:`CalendarQueue` / :class:`Event` — the
  scheduler backends (see :data:`SCHEDULERS`) and their event type.
- :class:`RandomStreams` — named, independent random streams.
- :class:`Clock`, :class:`PtpSyncModel`, :func:`tap_clock` — clock models.
- :class:`SimStats` / :func:`collect_stats` — event-loop counters and a
  context manager aggregating them across simulators.
- :mod:`repro.simcore.units` — ``NS``/``US``/``MS``/``SEC`` constants.
"""

from .clock import Clock, PtpSyncModel, tap_clock
from .events import (
    CalendarQueue,
    Event,
    EventQueue,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SCHEDULERS,
    Scheduler,
    make_scheduler,
)
from .rng import RandomStreams
from .simulator import Process, Signal, SimulationError, Simulator, every
from .stats import SimStats, collect as collect_stats
from .units import HOUR, MINUTE, MS, NS, SEC, US

__all__ = [
    "CalendarQueue",
    "Clock",
    "Event",
    "EventQueue",
    "HOUR",
    "MINUTE",
    "MS",
    "NS",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "PtpSyncModel",
    "RandomStreams",
    "SCHEDULERS",
    "SEC",
    "Scheduler",
    "Signal",
    "SimStats",
    "SimulationError",
    "Simulator",
    "US",
    "collect_stats",
    "every",
    "make_scheduler",
    "tap_clock",
]

"""Deterministic discrete-event simulation kernel.

Public API:

- :class:`Simulator` — event loop with integer-nanosecond time.
- :class:`Process` / :class:`Signal` — generator-coroutine processes.
- :class:`EventQueue` / :class:`Event` — the underlying queue.
- :class:`RandomStreams` — named, independent random streams.
- :class:`Clock`, :class:`PtpSyncModel`, :func:`tap_clock` — clock models.
- :mod:`repro.simcore.units` — ``NS``/``US``/``MS``/``SEC`` constants.
"""

from .clock import Clock, PtpSyncModel, tap_clock
from .events import (
    Event,
    EventQueue,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)
from .rng import RandomStreams
from .simulator import Process, Signal, SimulationError, Simulator, every
from .units import HOUR, MINUTE, MS, NS, SEC, US

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "HOUR",
    "MINUTE",
    "MS",
    "NS",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "PtpSyncModel",
    "RandomStreams",
    "SEC",
    "Signal",
    "SimulationError",
    "Simulator",
    "US",
    "every",
    "tap_clock",
]

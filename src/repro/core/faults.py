"""Stochastic fault injection driven by MTBF/MTTR profiles.

Bridges the analytic availability model (:mod:`core.availability_analysis`)
and the packet simulator: components fail and repair as exponential renewal
processes sampled from their :class:`ComponentClass`, and an observer
tracks each production cell's up/down intervals.  The integration tests
compare the *measured* availability against the analytic prediction — the
two must agree, which validates both sides.

Fault hooks are pluggable: a link fault downs a :class:`repro.net.Link`, a
controller fault crashes a :class:`repro.plc.PlcRuntime`, and arbitrary
callbacks cover everything else (e.g. a virtualization-stack incident that
crashes every vPLC on a host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..simcore import Simulator
from ..simcore.units import SEC
from .availability_analysis import ComponentClass


@dataclass
class FaultTarget:
    """One failing component: how to break it and how to repair it."""

    name: str
    component_class: ComponentClass
    fail: Callable[[], None]
    repair: Callable[[], None]
    #: cells affected while this component is down
    affected_cells: tuple[int, ...] = ()


@dataclass
class CellDowntimeLog:
    """Up/down bookkeeping for one production cell."""

    cell: int
    down_since_ns: int | None = None
    #: number of components currently holding the cell down
    down_count: int = 0
    outages: list[tuple[int, int]] = field(default_factory=list)

    def mark_down(self, now_ns: int) -> None:
        if self.down_count == 0:
            self.down_since_ns = now_ns
        self.down_count += 1

    def mark_up(self, now_ns: int) -> None:
        self.down_count -= 1
        if self.down_count == 0 and self.down_since_ns is not None:
            self.outages.append((self.down_since_ns, now_ns))
            self.down_since_ns = None

    def downtime_ns(self, horizon_ns: int) -> int:
        total = sum(end - start for start, end in self.outages)
        if self.down_since_ns is not None:
            total += horizon_ns - self.down_since_ns
        return total

    def availability(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        return 1.0 - self.downtime_ns(horizon_ns) / horizon_ns


class FaultInjector:
    """Schedules exponential failure/repair cycles for registered targets.

    Time acceleration: MTBFs are months — simulating them in nanosecond
    resolution is fine (integer time), but to collect statistics the
    ``time_compression`` factor shrinks both MTBF and MTTR, preserving
    their ratio (and therefore availability).
    """

    def __init__(
        self,
        sim: Simulator,
        cells: int,
        time_compression: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if cells < 1:
            raise ValueError("need at least one cell")
        if time_compression <= 0:
            raise ValueError("time compression must be positive")
        self.sim = sim
        self.time_compression = time_compression
        self.rng = rng if rng is not None else sim.streams.stream("faults")
        self.targets: list[FaultTarget] = []
        self.logs = [CellDowntimeLog(cell=index) for index in range(cells)]
        self.failures_injected = 0
        self._running = False

    # -- registration ----------------------------------------------------------

    def register(self, target: FaultTarget) -> None:
        """Add a component to the failure schedule."""
        for cell in target.affected_cells:
            if not 0 <= cell < len(self.logs):
                raise ValueError(f"unknown cell {cell}")
        self.targets.append(target)

    def register_link(
        self,
        link,
        component_class: ComponentClass,
        affected_cells: tuple[int, ...],
        name: str | None = None,
    ) -> None:
        """Convenience: a failing/repairing network link."""
        self.register(
            FaultTarget(
                name=name or repr(link),
                component_class=component_class,
                fail=link.set_down,
                repair=link.set_up,
                affected_cells=affected_cells,
            )
        )

    # -- operation --------------------------------------------------------------

    def start(self) -> None:
        """Begin the failure processes (one per registered target)."""
        self._running = True
        for target in self.targets:
            self.sim.process(
                self._lifecycle(target), name=f"fault:{target.name}"
            )

    def stop(self) -> None:
        """Stop scheduling further failures (pending repairs complete)."""
        self._running = False

    def _sample_ns(self, mean_s: float) -> int:
        scaled = mean_s / self.time_compression
        return max(1, int(self.rng.exponential(scaled) * SEC))

    def _lifecycle(self, target: FaultTarget):
        while self._running:
            yield self._sample_ns(target.component_class.mtbf_s)
            if not self._running:
                return
            self.failures_injected += 1
            target.fail()
            for cell in target.affected_cells:
                self.logs[cell].mark_down(self.sim.now)
            yield self._sample_ns(target.component_class.mttr_s)
            target.repair()
            for cell in target.affected_cells:
                self.logs[cell].mark_up(self.sim.now)

    # -- reporting ------------------------------------------------------------------

    def measured_availability(self, horizon_ns: int) -> dict[int, float]:
        """Per-cell availability over the observation horizon."""
        return {
            log.cell: log.availability(horizon_ns) for log in self.logs
        }

    def mean_availability(self, horizon_ns: int) -> float:
        """Average availability across cells."""
        values = list(self.measured_availability(horizon_ns).values())
        return float(np.mean(values))

    def simultaneous_outage_events(self) -> int:
        """Count of cell-outage intervals (one per affected cell)."""
        return sum(len(log.outages) for log in self.logs)

"""Stochastic fault injection driven by MTBF/MTTR profiles.

Bridges the analytic availability model (:mod:`core.availability_analysis`)
and the packet simulator: components fail and repair as exponential renewal
processes sampled from their :class:`ComponentClass`, and an observer
tracks each production cell's up/down intervals.  The integration tests
compare the *measured* availability against the analytic prediction — the
two must agree, which validates both sides.

Fault hooks are pluggable: a link fault downs a :class:`repro.net.Link`, a
controller fault crashes a :class:`repro.plc.PlcRuntime`, and arbitrary
callbacks cover everything else (e.g. a virtualization-stack incident that
crashes every vPLC on a host).

Two scheduling regimes coexist:

- **stochastic** — :meth:`FaultInjector.register` targets fail/repair as
  exponential renewal processes;
- **deterministic** — :meth:`FaultInjector.register_maintenance` windows
  open and close on a fixed period (planned maintenance, §2.2's scheduled
  downtime), which replays identically regardless of the seed.

With ``per_target_streams=True`` every target draws from its own named
:class:`~repro.simcore.rng.RandomStreams` stream, so adding, removing, or
reordering targets never perturbs the failure times of the others — the
property the :mod:`repro.chaos` campaign engine's bit-identical replay
contract rests on.

The injector emits ``chaos.fault.injected`` counters and
``chaos.cell.downtime_ns`` totals on the active
:class:`repro.obs.MetricsRegistry` (no-ops when observability is off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import get_registry, get_tracer
from ..simcore import Simulator
from ..simcore.units import SEC
from .availability_analysis import ComponentClass


@dataclass
class FaultTarget:
    """One failing component: how to break it and how to repair it."""

    name: str
    component_class: ComponentClass
    fail: Callable[[], None]
    repair: Callable[[], None]
    #: cells affected while this component is down
    affected_cells: tuple[int, ...] = ()


@dataclass(frozen=True)
class MaintenanceWindow:
    """A deterministic, periodic downtime window for one target.

    Every ``period_ns`` the target goes down for ``duration_ns``, starting
    at ``first_start_ns``.  Unlike stochastic faults this schedule is
    seed-independent.
    """

    target: FaultTarget
    period_ns: int
    duration_ns: int
    first_start_ns: int = 0

    def __post_init__(self) -> None:
        if self.period_ns <= 0 or self.duration_ns <= 0:
            raise ValueError("maintenance period and duration must be positive")
        if self.duration_ns >= self.period_ns:
            raise ValueError("maintenance window must be shorter than its period")
        if self.first_start_ns < 0:
            raise ValueError("maintenance start cannot be negative")

    @property
    def downtime_fraction(self) -> float:
        """Long-run unavailability contributed by this window."""
        return self.duration_ns / self.period_ns


@dataclass
class CellDowntimeLog:
    """Up/down bookkeeping for one production cell."""

    cell: int
    down_since_ns: int | None = None
    #: number of components currently holding the cell down
    down_count: int = 0
    outages: list[tuple[int, int]] = field(default_factory=list)

    def mark_down(self, now_ns: int) -> None:
        if self.down_count == 0:
            self.down_since_ns = now_ns
        self.down_count += 1

    def mark_up(self, now_ns: int) -> tuple[int, int] | None:
        """Release one hold; returns the completed outage interval, if any."""
        self.down_count -= 1
        if self.down_count == 0 and self.down_since_ns is not None:
            outage = (self.down_since_ns, now_ns)
            self.outages.append(outage)
            self.down_since_ns = None
            return outage
        return None

    def downtime_ns(self, horizon_ns: int) -> int:
        total = sum(end - start for start, end in self.outages)
        if self.down_since_ns is not None:
            total += horizon_ns - self.down_since_ns
        return total

    def intervals(self, horizon_ns: int | None = None) -> list[tuple[int, int]]:
        """All outage intervals, with any open outage clipped to the horizon."""
        result = list(self.outages)
        if self.down_since_ns is not None and horizon_ns is not None:
            result.append((self.down_since_ns, horizon_ns))
        return result

    def availability(self, horizon_ns: int) -> float:
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        return 1.0 - self.downtime_ns(horizon_ns) / horizon_ns


class FaultInjector:
    """Schedules exponential failure/repair cycles for registered targets.

    Time acceleration: MTBFs are months — simulating them in nanosecond
    resolution is fine (integer time), but to collect statistics the
    ``time_compression`` factor shrinks both MTBF and MTTR, preserving
    their ratio (and therefore availability).

    ``per_target_streams=True`` replaces the shared ``"faults"`` stream with
    one named stream per target (``<stream_prefix>/<target name>``), making
    each target's failure schedule independent of every other target.
    """

    def __init__(
        self,
        sim: Simulator,
        cells: int,
        time_compression: float = 1.0,
        rng: np.random.Generator | None = None,
        per_target_streams: bool = False,
        stream_prefix: str = "faults",
    ) -> None:
        if cells < 1:
            raise ValueError("need at least one cell")
        if time_compression <= 0:
            raise ValueError("time compression must be positive")
        self.sim = sim
        self.time_compression = time_compression
        self.per_target_streams = per_target_streams
        self.stream_prefix = stream_prefix
        self.rng = rng if rng is not None else sim.streams.stream(stream_prefix)
        self.targets: list[FaultTarget] = []
        self.maintenance: list[MaintenanceWindow] = []
        self.logs = [CellDowntimeLog(cell=index) for index in range(cells)]
        self.failures_injected = 0
        self._running = False
        registry = get_registry()
        self._m_injected = registry.counter("chaos.fault.injected")
        self._m_downtime = [
            registry.counter("chaos.cell.downtime_ns", cell=index)
            for index in range(cells)
        ]

    # -- registration ----------------------------------------------------------

    def register(self, target: FaultTarget) -> None:
        """Add a component to the failure schedule."""
        for cell in target.affected_cells:
            if not 0 <= cell < len(self.logs):
                raise ValueError(f"unknown cell {cell}")
        self.targets.append(target)

    def register_link(
        self,
        link,
        component_class: ComponentClass,
        affected_cells: tuple[int, ...],
        name: str | None = None,
    ) -> None:
        """Convenience: a failing/repairing network link."""
        self.register(
            FaultTarget(
                name=name or repr(link),
                component_class=component_class,
                fail=link.set_down,
                repair=link.set_up,
                affected_cells=affected_cells,
            )
        )

    def register_maintenance(self, window: MaintenanceWindow) -> None:
        """Add a deterministic periodic maintenance window."""
        for cell in window.target.affected_cells:
            if not 0 <= cell < len(self.logs):
                raise ValueError(f"unknown cell {cell}")
        self.maintenance.append(window)

    # -- operation --------------------------------------------------------------

    def start(self) -> None:
        """Begin the failure processes (one per registered target/window)."""
        self._running = True
        for target in self.targets:
            self.sim.process(
                self._lifecycle(target), name=f"fault:{target.name}"
            )
        for window in self.maintenance:
            self.sim.process(
                self._maintenance_lifecycle(window),
                name=f"maintenance:{window.target.name}",
            )

    def stop(self) -> None:
        """Stop scheduling further failures (pending repairs complete)."""
        self._running = False

    def _rng_for(self, target: FaultTarget) -> np.random.Generator:
        if self.per_target_streams:
            return self.sim.streams.stream(
                f"{self.stream_prefix}/{target.name}"
            )
        return self.rng

    def _sample_ns(self, rng: np.random.Generator, mean_s: float) -> int:
        scaled = mean_s / self.time_compression
        return max(1, int(rng.exponential(scaled) * SEC))

    def _fail(self, target: FaultTarget) -> None:
        self.failures_injected += 1
        self._m_injected.inc()
        get_tracer().instant(
            "chaos.fault",
            target=target.name,
            cells=list(target.affected_cells),
            sim_time_ns=self.sim.now,
        )
        target.fail()
        for cell in target.affected_cells:
            self.logs[cell].mark_down(self.sim.now)

    def _repair(self, target: FaultTarget) -> None:
        target.repair()
        for cell in target.affected_cells:
            outage = self.logs[cell].mark_up(self.sim.now)
            if outage is not None:
                self._m_downtime[cell].inc(outage[1] - outage[0])

    def _lifecycle(self, target: FaultTarget):
        rng = self._rng_for(target)
        while self._running:
            yield self._sample_ns(rng, target.component_class.mtbf_s)
            if not self._running:
                return
            self._fail(target)
            yield self._sample_ns(rng, target.component_class.mttr_s)
            self._repair(target)

    def _maintenance_lifecycle(self, window: MaintenanceWindow):
        period = max(1, int(window.period_ns / self.time_compression))
        duration = max(1, int(window.duration_ns / self.time_compression))
        start = int(window.first_start_ns / self.time_compression)
        if start:
            yield start
        while self._running:
            self._fail(window.target)
            yield duration
            self._repair(window.target)
            yield max(1, period - duration)

    # -- reporting ------------------------------------------------------------------

    def measured_availability(self, horizon_ns: int) -> dict[int, float]:
        """Per-cell availability over the observation horizon."""
        return {
            log.cell: log.availability(horizon_ns) for log in self.logs
        }

    def mean_availability(self, horizon_ns: int) -> float:
        """Average availability across cells."""
        values = list(self.measured_availability(horizon_ns).values())
        return float(np.mean(values))

    def outage_intervals(
        self, horizon_ns: int | None = None
    ) -> dict[int, list[tuple[int, int]]]:
        """Per-cell outage intervals (open outages clipped to the horizon).

        This is the campaign replay identity: two runs of the same
        ``(seed, scenario)`` must produce byte-identical interval lists.
        """
        return {
            log.cell: log.intervals(horizon_ns) for log in self.logs
        }

    def simultaneous_outage_events(self) -> int:
        """Count of cell-outage intervals (one per affected cell)."""
        return sum(len(log.outages) for log in self.logs)

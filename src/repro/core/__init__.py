"""The paper's framing as an API.

- :mod:`repro.core.requirements` — Section 2 timing / availability /
  traffic-class requirements with the paper's numbers;
- :mod:`repro.core.compliance` — measurement-vs-requirement checks;
- :mod:`repro.core.convergence` — the converged IT/OT factory facade.
"""

from .availability_analysis import (
    ComponentClass,
    DependencyChain,
    PlantArchitecture,
    classic_ot_plant,
    compare_architectures,
    consolidated_vplc_plant,
    redundant_vplc_plant,
)
from .faults import (
    CellDowntimeLog,
    FaultInjector,
    FaultTarget,
    MaintenanceWindow,
)
from .compliance import (
    ComplianceResult,
    check_availability,
    check_latency,
    check_timing,
)
from .convergence import Cell, ConvergedFactory, FactoryConfig
from .requirements import (
    AvailabilityRequirement,
    CYCLIC_RT_CLASS,
    DATACENTER_TYPICAL,
    INDUSTRIAL_SIX_NINES,
    ISOCHRONOUS_CLASS,
    MACHINE_TOOLS,
    MOTION_CONTROL,
    PROCESS_AUTOMATION,
    TIMING_CLASSES,
    TRAFFIC_CLASSES,
    TimingRequirement,
    TrafficClassRequirement,
)

__all__ = [
    "AvailabilityRequirement",
    "CYCLIC_RT_CLASS",
    "Cell",
    "ComplianceResult",
    "CellDowntimeLog",
    "ComponentClass",
    "FaultInjector",
    "FaultTarget",
    "DependencyChain",
    "PlantArchitecture",
    "classic_ot_plant",
    "compare_architectures",
    "consolidated_vplc_plant",
    "redundant_vplc_plant",
    "ConvergedFactory",
    "DATACENTER_TYPICAL",
    "FactoryConfig",
    "INDUSTRIAL_SIX_NINES",
    "ISOCHRONOUS_CLASS",
    "MaintenanceWindow",
    "MACHINE_TOOLS",
    "MOTION_CONTROL",
    "PROCESS_AUTOMATION",
    "TIMING_CLASSES",
    "TRAFFIC_CLASSES",
    "TimingRequirement",
    "TrafficClassRequirement",
    "check_availability",
    "check_latency",
    "check_timing",
]

"""Architectural availability analysis (Section 2.2).

The paper's availability argument, made computable: classical OT
architectures keep each production cell independent (a local PLC fails
alone), while consolidating virtual PLCs into a data center couples every
cell to shared infrastructure — "even a short-lived outage can
simultaneously affect dozens of production cells".

The analysis composes per-component steady-state availabilities
(MTBF/MTTR) along each cell's *dependency chain* and reports:

- per-cell availability;
- the expected number of simultaneously affected cells per shared-
  component failure (the blast radius);
- expected cell-downtime per year, aggregated over the plant.

Three reference architectures are provided: classic on-premise PLCs,
naive vPLC consolidation, and vPLC consolidation hardened with redundancy
(the InstaPLC/redundant-pair direction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.availability import (
    SECONDS_PER_YEAR,
    availability_from_mtbf_mttr,
    parallel_availability,
    series_availability,
)

HOURS = 3600.0


@dataclass(frozen=True)
class ComponentClass:
    """A failure/repair profile for one kind of component."""

    name: str
    mtbf_s: float
    mttr_s: float

    @property
    def availability(self) -> float:
        """Steady-state availability."""
        return availability_from_mtbf_mttr(self.mtbf_s, self.mttr_s)

    @property
    def failures_per_year(self) -> float:
        """Expected failure count per year."""
        return SECONDS_PER_YEAR / (self.mtbf_s + self.mttr_s)


#: Reference profiles.  MTBFs follow common industrial/DC planning values:
#: hardened PLC hardware is extremely reliable; servers and software stacks
#: fail far more often but repair faster.
HARDWARE_PLC_COMPONENT = ComponentClass(
    "hardware-plc", mtbf_s=150_000 * HOURS, mttr_s=4 * HOURS
)
INDUSTRIAL_SWITCH = ComponentClass(
    "industrial-switch", mtbf_s=200_000 * HOURS, mttr_s=2 * HOURS
)
DC_SERVER = ComponentClass("dc-server", mtbf_s=25_000 * HOURS, mttr_s=1 * HOURS)
DC_SWITCH = ComponentClass("dc-switch", mtbf_s=100_000 * HOURS, mttr_s=1 * HOURS)
DC_FIBER_LINK = ComponentClass(
    # The paper cites the large spread in fiber reliability; this is a
    # mid-range profile.
    "dc-fiber-link", mtbf_s=20_000 * HOURS, mttr_s=6 * HOURS
)
VIRTUALIZATION_STACK = ComponentClass(
    # Hypervisor/container platform: frequent small incidents, fast repair.
    "virtualization-stack", mtbf_s=4_000 * HOURS, mttr_s=0.25 * HOURS
)


@dataclass(frozen=True)
class DependencyChain:
    """What one production cell needs to keep operating.

    ``private`` components affect only this cell; ``shared`` components are
    common to ``cells_sharing`` cells (the blast radius of their failure).
    Redundant groups are expressed as tuples of parallel components.
    """

    private: tuple[ComponentClass, ...] = ()
    private_redundant: tuple[tuple[ComponentClass, ...], ...] = ()
    shared: tuple[ComponentClass, ...] = ()
    shared_redundant: tuple[tuple[ComponentClass, ...], ...] = ()

    def availability(self) -> float:
        """Cell availability over the full chain."""
        parts = [c.availability for c in self.private + self.shared]
        parts += [
            parallel_availability([c.availability for c in group])
            for group in self.private_redundant + self.shared_redundant
        ]
        return series_availability(parts)


@dataclass(frozen=True)
class PlantArchitecture:
    """A plant: N cells with a common dependency-chain template."""

    name: str
    cells: int
    chain: DependencyChain

    def cell_availability(self) -> float:
        """Availability of one cell."""
        return self.chain.availability()

    def cell_downtime_s_per_year(self) -> float:
        """Expected downtime of one cell per year."""
        return (1.0 - self.cell_availability()) * SECONDS_PER_YEAR

    def shared_failure_blast_radius(self) -> int:
        """Cells simultaneously affected when a shared component fails."""
        if self.chain.shared or self.chain.shared_redundant:
            return self.cells
        return 1

    def simultaneous_cell_outages_per_year(self) -> float:
        """Expected number of (cell x outage) events per year.

        Each private failure costs one cell-outage; each shared failure
        costs ``cells`` cell-outages at once — the consolidation penalty.
        """
        events = 0.0
        for component in self.chain.private:
            events += component.failures_per_year * 1
        for group in self.chain.private_redundant:
            events += _group_failures_per_year(group) * 1
        for component in self.chain.shared:
            events += component.failures_per_year * self.cells
        for group in self.chain.shared_redundant:
            events += _group_failures_per_year(group) * self.cells
        return events


def _group_failures_per_year(group: tuple[ComponentClass, ...]) -> float:
    """Rate of *group-level* outages (all members down together).

    Approximation: one member fails, and every other member is already
    down with probability (1 - A); rates then multiply by those
    unavailabilities.
    """
    rate = 0.0
    for index, component in enumerate(group):
        concurrent = 1.0
        for other_index, other in enumerate(group):
            if other_index != index:
                concurrent *= 1.0 - other.availability
        rate += component.failures_per_year * concurrent
    return rate


def classic_ot_plant(cells: int) -> PlantArchitecture:
    """Per-cell hardware PLC and cell switch; no shared dependencies."""
    chain = DependencyChain(
        private=(HARDWARE_PLC_COMPONENT, INDUSTRIAL_SWITCH),
    )
    return PlantArchitecture(name="classic-ot", cells=cells, chain=chain)


def consolidated_vplc_plant(cells: int) -> PlantArchitecture:
    """Naive consolidation: every cell depends on one DC stack."""
    chain = DependencyChain(
        private=(INDUSTRIAL_SWITCH,),
        shared=(
            DC_SERVER,
            VIRTUALIZATION_STACK,
            DC_SWITCH,
            DC_FIBER_LINK,
        ),
    )
    return PlantArchitecture(name="consolidated-vplc", cells=cells, chain=chain)


def redundant_vplc_plant(cells: int) -> PlantArchitecture:
    """Consolidation hardened with redundancy everywhere it is shared.

    Redundant servers/stacks model vPLC pairs (InstaPLC or classic
    standby), redundant switches/links model a dual-homed fabric.
    """
    chain = DependencyChain(
        private=(INDUSTRIAL_SWITCH,),
        shared_redundant=(
            (DC_SERVER, DC_SERVER),
            (VIRTUALIZATION_STACK, VIRTUALIZATION_STACK),
            (DC_SWITCH, DC_SWITCH),
            (DC_FIBER_LINK, DC_FIBER_LINK),
        ),
    )
    return PlantArchitecture(name="redundant-vplc", cells=cells, chain=chain)


def compare_architectures(cells: int = 24) -> dict[str, dict[str, float]]:
    """The Section 2.2 comparison for an N-cell plant."""
    result = {}
    for plant in (
        classic_ot_plant(cells),
        consolidated_vplc_plant(cells),
        redundant_vplc_plant(cells),
    ):
        result[plant.name] = {
            "cell_availability": plant.cell_availability(),
            "cell_downtime_s_per_year": plant.cell_downtime_s_per_year(),
            "blast_radius_cells": float(plant.shared_failure_blast_radius()),
            "cell_outages_per_year": plant.simultaneous_cell_outages_per_year(),
        }
    return result

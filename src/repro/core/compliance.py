"""Compliance evaluation: measurements against Section 2 requirements.

Given the artifacts our measurement layer produces — jitter reports,
latency series, outage logs — decide whether a deployment meets a timing or
availability class, and say *why not* when it does not.  This is the
reporting discipline the paper demands from vPLC evaluations (worst case,
consecutive events, watchdog behaviour), packaged as an API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.availability import OutageLog
from ..metrics.jitter import (
    jitter_report,
    longest_consecutive_jitter,
    watchdog_expirations,
)
from .requirements import AvailabilityRequirement, TimingRequirement


@dataclass(frozen=True)
class ComplianceResult:
    """Outcome of one check."""

    requirement: str
    passed: bool
    violations: tuple[str, ...] = ()
    details: dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.passed


def check_timing(
    requirement: TimingRequirement,
    arrivals_ns: "np.ndarray | list[int]",
    nominal_period_ns: int | None = None,
    watchdog_factor: int = 3,
    consecutive_jitter_threshold_ns: float | None = None,
) -> ComplianceResult:
    """Check a cyclic arrival series against a timing class.

    Evaluates worst-case jitter, watchdog expirations, and consecutive
    jitter events — the three under-reported metrics of Section 2.1.
    """
    period = nominal_period_ns or requirement.cycle_ns
    report = jitter_report(arrivals_ns, period)
    threshold = (
        consecutive_jitter_threshold_ns
        if consecutive_jitter_threshold_ns is not None
        else requirement.max_jitter_ns
    )
    run_length = longest_consecutive_jitter(arrivals_ns, period, threshold)
    expirations = watchdog_expirations(arrivals_ns, period, watchdog_factor)
    violations = []
    if not requirement.admits_jitter(report):
        violations.append(
            f"worst-case jitter {report.max_abs_jitter_ns:.0f} ns exceeds "
            f"{requirement.max_jitter_ns} ns"
        )
    if expirations > 0:
        violations.append(
            f"{expirations} watchdog expiration(s) at factor {watchdog_factor}"
        )
    if run_length >= watchdog_factor:
        violations.append(
            f"consecutive jitter run of {run_length} cycles reaches the "
            f"watchdog factor"
        )
    return ComplianceResult(
        requirement=requirement.name,
        passed=not violations,
        violations=tuple(violations),
        details={
            "max_abs_jitter_ns": report.max_abs_jitter_ns,
            "mean_abs_jitter_ns": report.mean_abs_jitter_ns,
            "consecutive_jitter_run": float(run_length),
            "watchdog_expirations": float(expirations),
        },
    )


def check_latency(
    requirement: TimingRequirement,
    latencies_ns: "np.ndarray | list[int]",
) -> ComplianceResult:
    """Check an end-to-end latency series against a timing class."""
    series = np.asarray(latencies_ns, dtype=float)
    if series.size == 0:
        raise ValueError("latency series is empty")
    worst = float(series.max())
    violations = []
    if not requirement.admits_latency_ns(worst):
        violations.append(
            f"worst-case latency {worst:.0f} ns exceeds "
            f"{requirement.max_latency_ns} ns"
        )
    return ComplianceResult(
        requirement=requirement.name,
        passed=not violations,
        violations=tuple(violations),
        details={
            "worst_ns": worst,
            "p999_ns": float(np.percentile(series, 99.9)),
            "mean_ns": float(series.mean()),
        },
    )


def check_availability(
    requirement: AvailabilityRequirement,
    outages: OutageLog,
) -> ComplianceResult:
    """Check an outage log against an availability class."""
    observed = outages.availability
    violations = []
    if not requirement.admits(observed):
        violations.append(
            f"observed availability {observed:.7f} below "
            f"{requirement.availability:.7f} "
            f"(projected {outages.projected_yearly_downtime_s():.1f} s/year "
            f"downtime vs budget "
            f"{requirement.downtime_budget_s_per_year:.1f} s/year)"
        )
    return ComplianceResult(
        requirement=requirement.name,
        passed=not violations,
        violations=tuple(violations),
        details={
            "observed_availability": observed,
            "projected_yearly_downtime_s": outages.projected_yearly_downtime_s(),
        },
    )

"""The converged IT/OT factory — the paper's Figure 2 as an API.

A :class:`ConvergedFactory` assembles the future-factory picture: virtual
PLCs consolidated in a small data-center fabric (leaf-spine) controlling
I/O devices out in production cells, with cyclic fieldbus traffic crossing
the converged network.  It is the integration point the examples and
integration tests drive, and the object compliance checks run against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fieldbus.device import IoDeviceApp
from ..fieldbus.protocol import ConnectionParams
from ..net.routing import install_shortest_path_routes
from ..net.topology import Topology
from ..plc.platform import PlatformModel, VPLC_PREEMPT_RT
from ..plc.program import FunctionBlockProgram, passthrough_program
from ..plc.runtime import PlcRuntime
from ..simcore import Simulator
from ..simcore.units import MS
from .compliance import ComplianceResult, check_timing
from .requirements import TimingRequirement


@dataclass(frozen=True)
class FactoryConfig:
    """Shape of the converged factory."""

    cells: int = 2
    devices_per_cell: int = 2
    cycle_ns: int = 2 * MS
    watchdog_factor: int = 3
    platform: PlatformModel = VPLC_PREEMPT_RT
    dc_spines: int = 2
    vplcs_per_leaf: int = 4
    link_bandwidth_bps: float = 1e9
    fabric_bandwidth_bps: float = 10e9
    #: cell-to-datacenter backhaul distance (propagation), ~1 km default
    backhaul_delay_ns: int = 5_000

    def __post_init__(self) -> None:
        if self.cells < 1 or self.devices_per_cell < 1:
            raise ValueError("need at least one cell and one device per cell")


@dataclass
class Cell:
    """One production cell: its switch, devices, and controlling vPLC."""

    index: int
    switch_name: str
    devices: list[IoDeviceApp] = field(default_factory=list)
    vplc: PlcRuntime | None = None


class ConvergedFactory:
    """Builds and operates a vPLC-in-the-data-center factory."""

    def __init__(
        self,
        sim: Simulator,
        config: FactoryConfig | None = None,
        program_factory=None,
    ) -> None:
        self.sim = sim
        self.config = config or FactoryConfig()
        self._program_factory = program_factory or self._default_program
        self.topo = Topology(sim, name="converged-factory")
        self.cells: list[Cell] = []
        self._build()

    def _default_program(self, cell: Cell) -> FunctionBlockProgram:
        mapping = {
            f"{device.name}.echo": f"{device.name}.counter"
            for device in cell.devices
        }
        return passthrough_program(mapping)

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        leaf_count = max(
            1, -(-config.cells // config.vplcs_per_leaf)  # ceil division
        )
        spines = [
            self.topo.add_switch(f"spine{i}") for i in range(config.dc_spines)
        ]
        leaves = []
        for leaf_index in range(leaf_count):
            leaf = self.topo.add_switch(f"leaf{leaf_index}")
            leaves.append(leaf)
            for spine in spines:
                self.topo.connect(leaf, spine, config.fabric_bandwidth_bps)
        for cell_index in range(config.cells):
            leaf = leaves[cell_index // config.vplcs_per_leaf]
            cell_switch = self.topo.add_switch(f"cell{cell_index}")
            # The cell's backhaul into the data center.
            self.topo.connect(
                cell_switch,
                leaf,
                config.link_bandwidth_bps,
                propagation_delay_ns=config.backhaul_delay_ns,
            )
            cell = Cell(index=cell_index, switch_name=cell_switch.name)
            for device_index in range(config.devices_per_cell):
                device_host = self.topo.add_host(
                    f"io{cell_index}_{device_index}"
                )
                self.topo.connect(
                    cell_switch, device_host, config.link_bandwidth_bps
                )
                cell.devices.append(IoDeviceApp(self.sim, device_host))
            vplc_host = self.topo.add_host(f"vplc{cell_index}")
            self.topo.connect(leaf, vplc_host, config.link_bandwidth_bps)
            vplc = PlcRuntime(
                self.sim,
                vplc_host,
                program=self._program_factory(cell),
                cycle_ns=config.cycle_ns,
                platform=config.platform,
                name=f"vplc{cell_index}",
            )
            params = ConnectionParams(
                cycle_ns=config.cycle_ns,
                watchdog_factor=config.watchdog_factor,
            )
            for device in cell.devices:
                vplc.assign_device(device.name, params=params)
            cell.vplc = vplc
            self.cells.append(cell)
        install_shortest_path_routes(self.topo)

    # -- operation ------------------------------------------------------------

    def start(self) -> None:
        """Start every cell's vPLC."""
        for cell in self.cells:
            assert cell.vplc is not None
            cell.vplc.start()

    def all_running(self) -> bool:
        """True when every vPLC reached RUNNING with all its devices."""
        return all(
            cell.vplc is not None and cell.vplc.all_running
            for cell in self.cells
        )

    def devices(self) -> list[IoDeviceApp]:
        """All I/O devices across cells."""
        return [device for cell in self.cells for device in cell.devices]

    # -- reporting --------------------------------------------------------------

    def timing_compliance(
        self, requirement: TimingRequirement
    ) -> dict[str, ComplianceResult]:
        """Per-device timing compliance of controller->device cyclic traffic."""
        results = {}
        for device in self.devices():
            arrivals = device.stats.rx_times_ns
            if len(arrivals) < 2:
                continue
            results[device.name] = check_timing(
                requirement,
                arrivals,
                nominal_period_ns=self.config.cycle_ns,
                watchdog_factor=self.config.watchdog_factor,
            )
        return results

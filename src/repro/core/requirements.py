"""Section 2's quantitative requirements as first-class objects.

Every number below is stated in the paper (with its upstream sources:
3GPP TR 22.804, 5G-ACIA, PROFINET specs):

- §2.1 timing: machine tools at 500 µs cycles; high-speed motion control at
  250 µs latency and < 1 µs jitter; process automation at 10-100 ms.
- §2.2 availability: >= 99.9999 % (six nines), i.e. < 31.5 s downtime/year;
  data centers aim for minutes per month.
- §2.3 traffic mix: time-critical cyclic traffic from < 2 ms cycles with
  20-50 B payloads up to 1-10 ms cycles with 40-250 B payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.availability import downtime_per_year_s, nines_to_availability
from ..metrics.jitter import JitterReport
from ..simcore.units import MS, US


@dataclass(frozen=True)
class TimingRequirement:
    """A timing class: cycle time, end-to-end latency, and jitter bounds."""

    name: str
    cycle_ns: int
    max_latency_ns: int
    max_jitter_ns: int

    def __post_init__(self) -> None:
        if min(self.cycle_ns, self.max_latency_ns, self.max_jitter_ns) <= 0:
            raise ValueError("timing bounds must be positive")

    def admits_jitter(self, report: JitterReport) -> bool:
        """True when measured worst-case jitter is within the bound."""
        return report.max_abs_jitter_ns <= self.max_jitter_ns

    def admits_latency_ns(self, worst_case_latency_ns: float) -> bool:
        """True when a worst-case latency fits the bound."""
        return worst_case_latency_ns <= self.max_latency_ns


#: Machine tools: "cycle times as low as 500 µs".
MACHINE_TOOLS = TimingRequirement(
    name="machine-tools",
    cycle_ns=500 * US,
    max_latency_ns=500 * US,
    max_jitter_ns=10 * US,
)

#: High-speed motion control (battery manufacturing): "latencies as low as
#: 250 µs and jitter less than 1 µs".
MOTION_CONTROL = TimingRequirement(
    name="motion-control",
    cycle_ns=250 * US,
    max_latency_ns=250 * US,
    max_jitter_ns=1 * US,
)

#: Process automation: "cycle times typically ranging from 10 ms to 100 ms".
PROCESS_AUTOMATION = TimingRequirement(
    name="process-automation",
    cycle_ns=10 * MS,
    max_latency_ns=100 * MS,
    max_jitter_ns=1 * MS,
)

TIMING_CLASSES = (MACHINE_TOOLS, MOTION_CONTROL, PROCESS_AUTOMATION)


@dataclass(frozen=True)
class AvailabilityRequirement:
    """An availability class expressed in nines."""

    name: str
    nines: float

    @property
    def availability(self) -> float:
        """Required availability fraction."""
        return nines_to_availability(self.nines)

    @property
    def downtime_budget_s_per_year(self) -> float:
        """Allowed downtime per year in seconds."""
        return downtime_per_year_s(self.availability)

    def admits(self, observed_availability: float) -> bool:
        """True when an observed availability meets the class."""
        return observed_availability >= self.availability


#: "at least 99.9999" — under 31.5 s downtime per year.
INDUSTRIAL_SIX_NINES = AvailabilityRequirement(name="industrial", nines=6.0)

#: Data centers: "monthly downtime of a few minutes" — about three nines.
DATACENTER_TYPICAL = AvailabilityRequirement(name="datacenter", nines=3.0)


@dataclass(frozen=True)
class TrafficClassRequirement:
    """One §2.3 cyclic traffic class."""

    name: str
    min_cycle_ns: int
    max_cycle_ns: int
    min_payload_bytes: int
    max_payload_bytes: int

    def admits(self, cycle_ns: int, payload_bytes: int) -> bool:
        """True when a flow's parameters fall inside the class."""
        return (
            self.min_cycle_ns <= cycle_ns <= self.max_cycle_ns
            and self.min_payload_bytes <= payload_bytes <= self.max_payload_bytes
        )


#: "very short cycle times (< 2 ms) with small payloads (20-50 bytes)".
ISOCHRONOUS_CLASS = TrafficClassRequirement(
    name="isochronous",
    min_cycle_ns=1,
    max_cycle_ns=2 * MS,
    min_payload_bytes=20,
    max_payload_bytes=50,
)

#: "slightly longer cycles (1-10 ms) and larger payloads (40 to 250 bytes)".
CYCLIC_RT_CLASS = TrafficClassRequirement(
    name="cyclic-rt",
    min_cycle_ns=1 * MS,
    max_cycle_ns=10 * MS,
    min_payload_bytes=40,
    max_payload_bytes=250,
)

TRAFFIC_CLASSES = (ISOCHRONOUS_CLASS, CYCLIC_RT_CLASS)

"""Network-induced input degradation for ML inference.

Section 5: "ML inference in industrial settings can significantly suffer
when exposed to network-induced data degradation, such as compression
artifacts, frame loss, or jitter".  :class:`NetworkDegradation` bundles the
three factors; the accuracy impact lives in
:mod:`repro.mlnet.models` response surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkDegradation:
    """Degradation experienced by a video/inference stream.

    Attributes
    ----------
    compression_ratio:
        Achieved compression relative to the reference encoding (1.0 =
        reference quality; 4.0 = four times smaller and visibly degraded).
    loss_rate:
        Fraction of frames lost or unusably late.
    jitter_ms:
        Delivery jitter; matters for control loops consuming the inference
        result, and degrades temporal models.
    """

    compression_ratio: float = 1.0
    loss_rate: float = 0.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.compression_ratio < 1.0:
            raise ValueError("compression ratio is relative to reference (>= 1)")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if self.jitter_ms < 0.0:
            raise ValueError("jitter cannot be negative")

    def frame_bytes(self, reference_bytes: int) -> int:
        """Frame size after compression."""
        return max(1, round(reference_bytes / self.compression_ratio))

    @classmethod
    def from_frame_bytes(
        cls,
        frame_bytes: int,
        reference_bytes: int,
        loss_rate: float = 0.0,
        jitter_ms: float = 0.0,
    ) -> "NetworkDegradation":
        """Inverse of :meth:`frame_bytes` (used by the traffic optimizer)."""
        if frame_bytes <= 0 or frame_bytes > reference_bytes:
            raise ValueError(
                "frame bytes must be positive and at most the reference size"
            )
        return cls(
            compression_ratio=reference_bytes / frame_bytes,
            loss_rate=loss_rate,
            jitter_ms=jitter_ms,
        )

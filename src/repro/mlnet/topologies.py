"""The three Figure 6 topology candidates.

- **Ring** — the classic industrial layout: switches in a ring, clients
  spread around it, all inference served by a central compute rack on one
  ring switch (OT plants centralize compute at the cell/line server).
- **Leaf-spine** — the IT derivative: clients under leaves, a 10 Gbit/s
  fabric, and the same central compute rack under a dedicated service leaf.
- **ML-aware** — the paper's traffic-aware design: clients are grouped
  into cells with *local*, demand-sized edge servers, and frame sizes are
  chosen from the application's accuracy/data-quantity trade-off (see
  :mod:`repro.mlnet.optimizer`).

Every builder returns an :class:`MlDeployment` with the topology, the
client hosts, their server assignment, and the server engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..net.host import Host
from ..net.routing import install_shortest_path_routes
from ..net.topology import Topology
from ..simcore import Simulator
from .models import MlAppProfile
from .serving import InferenceServer

GBPS = 1e9
TEN_GBPS = 10e9


@dataclass
class MlDeployment:
    """A built topology plus the inference service layout on it."""

    name: str
    topo: Topology
    client_hosts: list[Host]
    #: client host name -> server host name
    assignment: dict[str, str] = field(default_factory=dict)
    servers: list[InferenceServer] = field(default_factory=list)
    #: per-client frame size chosen for this design
    frame_bytes: int = 0

    def server_for(self, client_name: str) -> str:
        """Assigned server of a client."""
        return self.assignment[client_name]


def _make_servers(
    sim: Simulator,
    topo: Topology,
    attach_to,
    count: int,
    profile: MlAppProfile,
    prefix: str,
    bandwidth_bps: float = GBPS,
) -> list[InferenceServer]:
    servers = []
    for index in range(count):
        host = topo.add_host(f"{prefix}{index}")
        topo.connect(attach_to, host, bandwidth_bps)
        servers.append(
            InferenceServer(
                sim,
                host,
                units=1,
                service_time_ns=profile.inference_time_ns,
            )
        )
    return servers


def _assign_round_robin(
    clients: list[Host], servers: list[InferenceServer]
) -> dict[str, str]:
    return {
        client.name: servers[index % len(servers)].host.name
        for index, client in enumerate(clients)
    }


def build_ring_deployment(
    sim: Simulator,
    client_count: int,
    profile: MlAppProfile,
    clients_per_switch: int = 16,
    central_servers: int = 6,
) -> MlDeployment:
    """Industrial ring with a central compute rack on switch 0."""
    switch_count = max(4, math.ceil(client_count / clients_per_switch))
    topo = Topology(sim, name=f"ml-ring-{client_count}")
    switches = [topo.add_switch(f"sw{i}") for i in range(switch_count)]
    for i, switch in enumerate(switches):
        topo.connect(switch, switches[(i + 1) % switch_count], GBPS)
    clients = []
    for index in range(client_count):
        host = topo.add_host(f"c{index}")
        topo.connect(switches[index % switch_count], host, GBPS)
        clients.append(host)
    servers = _make_servers(
        sim, topo, switches[0], central_servers, profile, prefix="srv"
    )
    install_shortest_path_routes(topo)
    return MlDeployment(
        name="ring",
        topo=topo,
        client_hosts=clients,
        assignment=_assign_round_robin(clients, servers),
        servers=servers,
        frame_bytes=profile.reference_frame_bytes,
    )


def build_leaf_spine_deployment(
    sim: Simulator,
    client_count: int,
    profile: MlAppProfile,
    clients_per_leaf: int = 32,
    spine_count: int = 2,
    central_servers: int = 6,
) -> MlDeployment:
    """Leaf-spine fabric with the compute rack under a service leaf."""
    leaf_count = max(1, math.ceil(client_count / clients_per_leaf))
    topo = Topology(sim, name=f"ml-leafspine-{client_count}")
    spines = [topo.add_switch(f"spine{i}") for i in range(spine_count)]
    leaves = [topo.add_switch(f"leaf{i}") for i in range(leaf_count)]
    service_leaf = topo.add_switch("leaf_svc")
    for leaf in leaves + [service_leaf]:
        for spine in spines:
            topo.connect(leaf, spine, TEN_GBPS)
    clients = []
    for index in range(client_count):
        host = topo.add_host(f"c{index}")
        topo.connect(leaves[index // clients_per_leaf], host, GBPS)
        clients.append(host)
    servers = _make_servers(
        sim, topo, service_leaf, central_servers, profile, prefix="srv"
    )
    install_shortest_path_routes(topo)
    return MlDeployment(
        name="leaf-spine",
        topo=topo,
        client_hosts=clients,
        assignment=_assign_round_robin(clients, servers),
        servers=servers,
        frame_bytes=profile.reference_frame_bytes,
    )


def build_ml_aware_deployment(
    sim: Simulator,
    client_count: int,
    profile: MlAppProfile,
    cell_size: int = 32,
    servers_per_cell: int | None = None,
    frame_bytes: int | None = None,
) -> MlDeployment:
    """The traffic-aware design: per-cell edge servers, tuned frame size.

    ``servers_per_cell`` and ``frame_bytes`` default to the optimizer's
    choices (:mod:`repro.mlnet.optimizer`); they are parameters so the
    ablation benchmarks can explore the design space.
    """
    from .optimizer import MlAwareOptimizer  # local import: optimizer uses us

    if servers_per_cell is None or frame_bytes is None:
        design = MlAwareOptimizer(profile).design(client_count, cell_size)
        servers_per_cell = servers_per_cell or design.servers_per_cell
        frame_bytes = frame_bytes or design.frame_bytes
    cell_count = max(1, math.ceil(client_count / cell_size))
    topo = Topology(sim, name=f"ml-aware-{client_count}")
    spine = topo.add_switch("agg")
    clients: list[Host] = []
    servers: list[InferenceServer] = []
    assignment: dict[str, str] = {}
    for cell_index in range(cell_count):
        cell_switch = topo.add_switch(f"cell{cell_index}")
        topo.connect(cell_switch, spine, TEN_GBPS)
        cell_servers = _make_servers(
            sim,
            topo,
            cell_switch,
            servers_per_cell,
            profile,
            prefix=f"srv{cell_index}_",
        )
        servers.extend(cell_servers)
        low = cell_index * cell_size
        high = min(client_count, low + cell_size)
        for index in range(low, high):
            host = topo.add_host(f"c{index}")
            topo.connect(cell_switch, host, GBPS)
            clients.append(host)
            local = cell_servers[(index - low) % len(cell_servers)]
            assignment[host.name] = local.host.name
    install_shortest_path_routes(topo)
    return MlDeployment(
        name="ml-aware",
        topo=topo,
        client_hosts=clients,
        assignment=assignment,
        servers=servers,
        frame_bytes=frame_bytes,
    )

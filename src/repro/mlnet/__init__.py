"""ML-aware industrial networks (Section 5 / Figure 6).

Degradation-aware ML application profiles, inference clients/servers, the
three candidate topologies, the traffic-aware design optimizer, and the
Figure 6 experiment harness.
"""

from .degradation import NetworkDegradation
from .experiment import (
    Fig6Point,
    PAPER_CLIENT_COUNTS,
    TOPOLOGY_BUILDERS,
    as_series,
    run_deployment,
    run_fig6,
    run_point,
)
from .models import (
    AGV_NAVIGATION,
    ALL_APPS,
    DEFECT_DETECTION,
    MlAppProfile,
    OBJECT_IDENTIFICATION,
    PAPER_APPS,
)
from .optimizer import MlAwareDesign, MlAwareOptimizer, mmc_wait_s
from .serving import InferenceServer, MlClient, MTU_PAYLOAD_BYTES
from .topologies import (
    MlDeployment,
    build_leaf_spine_deployment,
    build_ml_aware_deployment,
    build_ring_deployment,
)

__all__ = [
    "AGV_NAVIGATION",
    "ALL_APPS",
    "DEFECT_DETECTION",
    "Fig6Point",
    "InferenceServer",
    "MTU_PAYLOAD_BYTES",
    "MlAppProfile",
    "MlAwareDesign",
    "MlAwareOptimizer",
    "MlClient",
    "MlDeployment",
    "NetworkDegradation",
    "OBJECT_IDENTIFICATION",
    "PAPER_APPS",
    "PAPER_CLIENT_COUNTS",
    "TOPOLOGY_BUILDERS",
    "as_series",
    "build_leaf_spine_deployment",
    "build_ml_aware_deployment",
    "build_ring_deployment",
    "mmc_wait_s",
    "run_deployment",
    "run_fig6",
    "run_point",
]

"""The traffic-aware design optimizer behind the ML-aware topology.

Section 5: the ML-aware design "takes volatile input and constrained edge
and fog computing environments into account" and "aligns inference accuracy
with infrastructure cost and network dimensioning".  Concretely, the
optimizer makes two decisions per deployment:

1. **Frame size** — the smallest frame that still meets the application's
   accuracy target (inverting the degradation response surface).  Less data
   per frame means less network load for the *same* delivered accuracy.
2. **Edge compute sizing** — the fewest per-cell inference servers keeping
   the compute utilization under a target, using the M/M/c estimate as a
   screening model, so cost grows only as fast as demand requires.

Both decisions come with an analytic latency estimate used by the
``design_sweep`` ablation; the Figure 6 experiment validates the chosen
design in full packet simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .models import MlAppProfile


@dataclass(frozen=True)
class MlAwareDesign:
    """One candidate design for a deployment."""

    profile_name: str
    cell_size: int
    servers_per_cell: int
    frame_bytes: int
    predicted_accuracy: float
    estimated_latency_ms: float
    cost_units: float


def mmc_wait_s(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean M/M/c waiting time (Erlang-C).  Returns ``inf`` when unstable."""
    if servers < 1:
        raise ValueError("need at least one server")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        return math.inf
    offered = arrival_rate / service_rate
    # Erlang-C probability of waiting.
    summation = sum(offered ** k / math.factorial(k) for k in range(servers))
    top = offered ** servers / (math.factorial(servers) * (1 - rho))
    p_wait = top / (summation + top)
    return p_wait / (servers * service_rate - arrival_rate)


class MlAwareOptimizer:
    """Chooses frame size and per-cell server count for one application."""

    def __init__(
        self,
        profile: MlAppProfile,
        utilization_target: float = 0.5,
        server_cost: float = 4.0,
        switch_cost: float = 2.0,
        access_bandwidth_bps: float = 1e9,
        hops_to_edge: int = 1,
    ) -> None:
        if not 0 < utilization_target < 1:
            raise ValueError("utilization target must be in (0, 1)")
        self.profile = profile
        self.utilization_target = utilization_target
        self.server_cost = server_cost
        self.switch_cost = switch_cost
        self.access_bandwidth_bps = access_bandwidth_bps
        self.hops_to_edge = hops_to_edge

    def frame_bytes(self) -> int:
        """The accuracy-preserving minimum frame size."""
        return self.profile.min_frame_bytes()

    def servers_for_cell(self, cell_clients: int) -> int:
        """Fewest servers keeping compute utilization under target."""
        arrival = cell_clients * self.profile.fps
        service_rate = 1e9 / self.profile.inference_time_ns
        servers = max(1, math.ceil(arrival / (service_rate * self.utilization_target)))
        return servers

    def estimate_latency_ms(
        self, cell_clients: int, servers: int, frame_bytes: int
    ) -> float:
        """Analytic end-to-end latency estimate for one cell."""
        wire_s = (
            (frame_bytes * 8 / self.access_bandwidth_bps)
            * (self.hops_to_edge + 1)
        )
        arrival = cell_clients * self.profile.fps
        service_rate = 1e9 / self.profile.inference_time_ns
        wait_s = mmc_wait_s(arrival, service_rate, servers)
        inference_s = self.profile.inference_time_ns / 1e9
        if math.isinf(wait_s):
            return math.inf
        return (wire_s + wait_s + inference_s) * 1e3

    def design(self, client_count: int, cell_size: int = 32) -> MlAwareDesign:
        """Produce the design used by :func:`build_ml_aware_deployment`."""
        frame = self.frame_bytes()
        cells = max(1, math.ceil(client_count / cell_size))
        per_cell = min(cell_size, client_count)
        servers = self.servers_for_cell(per_cell)
        from .degradation import NetworkDegradation

        degradation = NetworkDegradation.from_frame_bytes(
            frame, self.profile.reference_frame_bytes
        )
        return MlAwareDesign(
            profile_name=self.profile.name,
            cell_size=cell_size,
            servers_per_cell=servers,
            frame_bytes=frame,
            predicted_accuracy=self.profile.accuracy(degradation),
            estimated_latency_ms=self.estimate_latency_ms(
                per_cell, servers, frame
            ),
            cost_units=cells * (self.switch_cost + servers * self.server_cost),
        )

    def design_sweep(
        self, client_count: int, cell_sizes: list[int] | None = None
    ) -> list[MlAwareDesign]:
        """Evaluate several cell sizes — the cost/latency ablation."""
        sizes = cell_sizes or [8, 16, 32, 64]
        return [self.design(client_count, size) for size in sizes]

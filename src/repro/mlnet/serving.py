"""Inference clients and servers over the packet network.

:class:`MlClient` periodically captures a frame, segments it into MTU-sized
packets, and streams it to its assigned server.  :class:`InferenceServer`
reassembles frames, queues them on a bank of compute units, and returns a
small result packet.  The client's recorded latency is first-packet-out to
result-in — the end-to-end inference latency Figure 6 plots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..net.host import Host
from ..net.packet import Packet, TrafficClass
from ..simcore import Simulator

MTU_PAYLOAD_BYTES = 1_460


@dataclass
class ClientStats:
    """Per-client measurement record."""

    frames_sent: int = 0
    results_received: int = 0
    latencies_ns: list[int] = field(default_factory=list)


class MlClient:
    """A camera + inference client bound to one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server_name: str,
        frame_bytes: int,
        fps: float,
        start_ns: int = 0,
        client_id: str | None = None,
    ) -> None:
        if frame_bytes <= 0 or fps <= 0:
            raise ValueError("frame size and fps must be positive")
        self.sim = sim
        self.host = host
        self.server_name = server_name
        self.frame_bytes = frame_bytes
        self.period_ns = round(1e9 / fps)
        self.start_ns = start_ns
        self.client_id = client_id or host.name
        self.stats = ClientStats()
        self._send_times: dict[int, int] = {}
        self.running = False
        host.on_receive(self._on_packet)

    def start(self) -> None:
        """Begin streaming frames."""
        self.running = True
        self.sim.process(self._loop(), name=f"mlclient:{self.client_id}")

    def stop(self) -> None:
        """Stop streaming."""
        self.running = False

    def _loop(self):
        if self.start_ns:
            yield self.start_ns
        next_release = self.sim.now
        while self.running:
            self._send_frame()
            next_release += self.period_ns
            yield max(0, next_release - self.sim.now)

    def _send_frame(self) -> None:
        self.stats.frames_sent += 1
        frame_seq = self.stats.frames_sent
        self._send_times[frame_seq] = self.sim.now
        remaining = self.frame_bytes
        segment = 0
        while remaining > 0:
            size = min(remaining, MTU_PAYLOAD_BYTES)
            remaining -= size
            segment += 1
            self.host.send(
                dst=self.server_name,
                payload_bytes=size,
                traffic_class=TrafficClass.LATENCY_SENSITIVE,
                flow_id=f"ml:{self.client_id}",
                sequence=frame_seq,
                payload={
                    "type": "ml_frame_segment",
                    "client": self.client_id,
                    "frame": frame_seq,
                    "segment": segment,
                    "frame_bytes": self.frame_bytes,
                },
            )

    def _on_packet(self, packet: Packet) -> None:
        if packet.payload.get("type") != "ml_result":
            return
        frame_seq = packet.payload.get("frame")
        sent = self._send_times.pop(frame_seq, None)
        if sent is None:
            return
        self.stats.results_received += 1
        self.stats.latencies_ns.append(self.sim.now - sent)

    def latencies_ms(self) -> np.ndarray:
        """Observed end-to-end latencies in milliseconds."""
        return np.asarray(self.stats.latencies_ns, dtype=float) / 1e6


@dataclass
class ServerStats:
    """Per-server counters."""

    frames_completed: int = 0
    results_sent: int = 0
    busy_ns: int = 0
    queue_peak: int = 0


class InferenceServer:
    """A compute node with ``units`` parallel inference engines."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        units: int = 1,
        service_time_ns: int = 500_000,
        service_cv: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        if units < 1:
            raise ValueError("need at least one compute unit")
        self.sim = sim
        self.host = host
        self.units = units
        self.service_time_ns = service_time_ns
        self.service_cv = service_cv
        self.rng = rng if rng is not None else sim.streams.stream(
            f"mlserver/{host.name}"
        )
        self.stats = ServerStats()
        self._reassembly: dict[tuple[str, int], int] = {}
        self._queue: deque[tuple[str, int, str]] = deque()
        self._busy_units = 0
        host.on_receive(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.payload.get("type") != "ml_frame_segment":
            return
        key = (packet.payload["client"], packet.payload["frame"])
        received = self._reassembly.get(key, 0) + packet.payload_bytes
        if received >= packet.payload["frame_bytes"]:
            self._reassembly.pop(key, None)
            self._enqueue(packet.payload["client"], packet.payload["frame"],
                          packet.src)
        else:
            self._reassembly[key] = received
        # The server is the terminal consumer of segment frames: recycle
        # them unless the host is recording traffic for inspection.
        if not self.host.record_received:
            packet.release()

    def _enqueue(self, client_id: str, frame_seq: int, reply_to: str) -> None:
        self._queue.append((client_id, frame_seq, reply_to))
        self.stats.queue_peak = max(self.stats.queue_peak, len(self._queue))
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while self._busy_units < self.units and self._queue:
            job = self._queue.popleft()
            self._busy_units += 1
            service = self._sample_service_ns()
            self.stats.busy_ns += service
            self.sim.schedule(lambda j=job: self._finish(j), after=service)

    def _sample_service_ns(self) -> int:
        sigma = self.service_time_ns * self.service_cv
        return max(1_000, int(self.rng.normal(self.service_time_ns, sigma)))

    def _finish(self, job: tuple[str, int, str]) -> None:
        client_id, frame_seq, reply_to = job
        self._busy_units -= 1
        self.stats.frames_completed += 1
        self.stats.results_sent += 1
        self.host.send(
            dst=reply_to,
            payload_bytes=800,
            traffic_class=TrafficClass.LATENCY_SENSITIVE,
            flow_id=f"mlres:{self.host.name}",
            sequence=frame_seq,
            payload={
                "type": "ml_result",
                "client": client_id,
                "frame": frame_seq,
            },
        )
        self._try_dispatch()

"""The Figure 6 experiment: ML inference latency across topologies.

For each client count (32/64/128/256 in the paper) and each application
(object identification, defect detection), build the three candidate
deployments, stream frames for a fixed horizon, and report the mean
end-to-end inference latency.  Expected shape: ring worst, leaf-spine
slightly better, ML-aware clearly best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simcore import Simulator
from ..simcore.units import MS, SEC
from .models import DEFECT_DETECTION, MlAppProfile, OBJECT_IDENTIFICATION
from .serving import MlClient
from .topologies import (
    MlDeployment,
    build_leaf_spine_deployment,
    build_ml_aware_deployment,
    build_ring_deployment,
)

#: Figure 6 x-axis.
PAPER_CLIENT_COUNTS = (32, 64, 128, 256)

TOPOLOGY_BUILDERS = {
    "ring": build_ring_deployment,
    "leaf-spine": build_leaf_spine_deployment,
    "ml-aware": build_ml_aware_deployment,
}


@dataclass(frozen=True)
class Fig6Point:
    """One (application, topology, client-count) measurement."""

    app: str
    topology: str
    clients: int
    mean_latency_ms: float
    p99_latency_ms: float
    frames_measured: int
    frame_bytes: int


def run_deployment(
    deployment: MlDeployment,
    profile: MlAppProfile,
    sim: Simulator,
    duration_ns: int = 1 * SEC,
    warmup_ns: int = 200 * MS,
) -> tuple[float, float, int]:
    """Stream frames over a built deployment; return latency stats."""
    offsets = sim.streams.stream("fig6/offsets")
    period_ns = round(1e9 / profile.fps)
    clients = [
        MlClient(
            sim,
            host,
            server_name=deployment.server_for(host.name),
            frame_bytes=deployment.frame_bytes,
            fps=profile.fps,
            start_ns=int(offsets.integers(0, period_ns)),
        )
        for host in deployment.client_hosts
    ]
    for client in clients:
        client.start()
    sim.run(until=duration_ns)
    for client in clients:
        client.stop()
    latencies = []
    for client in clients:
        stamps = np.asarray(client.stats.latencies_ns, dtype=np.int64)
        # Ignore warmup frames: count completions after the warmup horizon.
        keep = max(0, int(round((warmup_ns / duration_ns) * stamps.size)))
        latencies.append(stamps[keep:])
    merged = np.concatenate([s for s in latencies if s.size]) / 1e6
    if merged.size == 0:
        raise RuntimeError(
            f"no frames completed on {deployment.name}; "
            f"the deployment is overloaded or broken"
        )
    return float(np.mean(merged)), float(np.percentile(merged, 99)), int(merged.size)


def run_point(
    app: MlAppProfile,
    topology: str,
    clients: int,
    duration_ns: int = 1 * SEC,
    seed: int = 0,
) -> Fig6Point:
    """Build and run one Figure 6 data point."""
    builder = TOPOLOGY_BUILDERS[topology]
    sim = Simulator(seed=seed)
    deployment = builder(sim, clients, app)
    mean_ms, p99_ms, count = run_deployment(
        deployment, app, sim, duration_ns=duration_ns
    )
    return Fig6Point(
        app=app.name,
        topology=topology,
        clients=clients,
        mean_latency_ms=mean_ms,
        p99_latency_ms=p99_ms,
        frames_measured=count,
        frame_bytes=deployment.frame_bytes,
    )


def run_fig6(
    client_counts: tuple[int, ...] = PAPER_CLIENT_COUNTS,
    apps: tuple[MlAppProfile, ...] = (OBJECT_IDENTIFICATION, DEFECT_DETECTION),
    topologies: tuple[str, ...] = ("ring", "leaf-spine", "ml-aware"),
    duration_ns: int = 1 * SEC,
    seed: int = 0,
) -> list[Fig6Point]:
    """The full Figure 6 sweep."""
    points = []
    for app in apps:
        for topology in topologies:
            for clients in client_counts:
                points.append(
                    run_point(
                        app, topology, clients,
                        duration_ns=duration_ns, seed=seed,
                    )
                )
    return points


def as_series(points: list[Fig6Point]) -> dict[str, dict[str, list[float]]]:
    """Regroup points as ``{app: {topology: [latency per client count]}}``."""
    series: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for point in points:
        series.setdefault(point.app, {}).setdefault(point.topology, []).append(
            (point.clients, point.mean_latency_ms)
        )
    return {
        app: {
            topology: [latency for _, latency in sorted(samples)]
            for topology, samples in by_topology.items()
        }
        for app, by_topology in series.items()
    }

"""ML application profiles and their degradation response surfaces.

The paper's two Figure 6 applications — *object identification* (e.g. for
robot pick-and-place) and *defect detection* (automated optical inspection
on the casting dataset it cites) — are modeled as accuracy response
surfaces over input degradation.  The surface shape follows the published
robustness-benchmark literature the paper cites (accuracy decays smoothly
and convexly with corruption severity; loss acts roughly linearly):

``accuracy = base - fidelity_coeff * (compression_ratio - 1)^fidelity_exp
           - loss_coeff * loss_rate``

Inverting the surface gives the *minimum frame size* that still meets a
target accuracy — the data-quantity/prediction-quality trade the paper's
traffic-aware design exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .degradation import NetworkDegradation


@dataclass(frozen=True)
class MlAppProfile:
    """One inference application, as the network sees it."""

    name: str
    base_accuracy: float
    fidelity_coeff: float
    fidelity_exp: float
    loss_coeff: float
    reference_frame_bytes: int
    target_accuracy: float
    fps: float
    inference_time_ns: int
    result_bytes: int = 1_000

    def accuracy(self, degradation: NetworkDegradation) -> float:
        """Predicted accuracy under the given degradation."""
        severity = degradation.compression_ratio - 1.0
        value = (
            self.base_accuracy
            - self.fidelity_coeff * severity ** self.fidelity_exp
            - self.loss_coeff * degradation.loss_rate
        )
        return max(0.0, min(1.0, value))

    def max_compression_for(
        self, target_accuracy: float, loss_rate: float = 0.0
    ) -> float:
        """Largest compression ratio still meeting ``target_accuracy``."""
        budget = self.base_accuracy - target_accuracy - self.loss_coeff * loss_rate
        if budget <= 0:
            return 1.0
        severity = (budget / self.fidelity_coeff) ** (1.0 / self.fidelity_exp)
        return 1.0 + severity

    def min_frame_bytes(
        self, target_accuracy: float | None = None, loss_rate: float = 0.0
    ) -> int:
        """Smallest frame that still meets the accuracy target."""
        target = self.target_accuracy if target_accuracy is None else target_accuracy
        ratio = self.max_compression_for(target, loss_rate)
        return max(1, math.ceil(self.reference_frame_bytes / ratio))

    def demand_bps(self, frame_bytes: int) -> float:
        """Offered load of one client at a given frame size."""
        return frame_bytes * 8 * self.fps


#: Object identification: moderately robust to compression (shape/color
#: cues survive), higher frame rate to track moving parts.
OBJECT_IDENTIFICATION = MlAppProfile(
    name="object-identification",
    base_accuracy=0.96,
    fidelity_coeff=0.035,
    fidelity_exp=1.4,
    loss_coeff=0.30,
    reference_frame_bytes=60_000,
    target_accuracy=0.92,
    fps=15.0,
    inference_time_ns=1_100_000,
    result_bytes=800,
)

#: Defect detection: fine textural features die under compression, so the
#: surface is steeper; inspection runs at a lower frame rate but needs
#: larger frames.
DEFECT_DETECTION = MlAppProfile(
    name="defect-detection",
    base_accuracy=0.94,
    fidelity_coeff=0.060,
    fidelity_exp=1.2,
    loss_coeff=0.45,
    reference_frame_bytes=120_000,
    target_accuracy=0.90,
    fps=4.0,
    inference_time_ns=1_700_000,
    result_bytes=600,
)

#: AGV navigation (Section 5 names it among the ML workloads): lower-
#: resolution perception at high frame rate with tight latency needs —
#: navigation tolerates compression well but not stale results.
AGV_NAVIGATION = MlAppProfile(
    name="agv-navigation",
    base_accuracy=0.97,
    fidelity_coeff=0.020,
    fidelity_exp=1.5,
    loss_coeff=0.60,
    reference_frame_bytes=30_000,
    target_accuracy=0.93,
    fps=20.0,
    inference_time_ns=600_000,
    result_bytes=400,
)

#: Both Figure 6 applications.
PAPER_APPS = (OBJECT_IDENTIFICATION, DEFECT_DETECTION)

#: All modeled applications, including the AGV extension.
ALL_APPS = (OBJECT_IDENTIFICATION, DEFECT_DETECTION, AGV_NAVIGATION)

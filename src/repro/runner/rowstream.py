"""Streaming row storage: content-addressed, chunked JSONL row files.

The PR-1 engine returned every job's rows *in memory* to the supervising
process, so a sweep's peak RSS grew with (cells × rows-per-cell) — fine
for five figures, fatal for a million-cell grid.  This module is the
disk-backed alternative the executor backends share:

- **Writers** (pool workers, ``repro worker`` subprocesses) split a job's
  rows into chunks of :data:`DEFAULT_CHUNK_ROWS` JSON lines and write
  them *content-addressed* — ``<root>/<key[:2]>/<key>.rows-00000.jsonl``,
  the same two-level fan-out and the same SHA-256 job key as
  :class:`~repro.runner.cache.ResultCache` entries — so any host writing
  into a shared store lands chunks in a collision-free, resumable spot.
  Chunks are written atomically (temp file + ``os.replace``).

- **Readers** get a :class:`LazyRows`: a sequence-shaped view over the
  chunk files that streams on iteration and never holds more than one
  row in memory, yet renders (``to_csv``/``to_json``/``to_table``) and
  compares like the eager :class:`~repro.figures.Rows` it replaces.

Chunk files are valid JSONL (one row object per line), so external
tooling — ``jq``, a Spark reader, a future SSH backend's rsync — can
consume them without this module.
"""

from __future__ import annotations

import csv
import io
import itertools
import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..figures import Rows

#: Rows per chunk file when the caller does not choose.  Small enough to
#: bound writer memory and stream early, large enough to keep file counts
#: and per-chunk open() overhead negligible.
DEFAULT_CHUNK_ROWS = 256

#: ``<key>.rows-<index>.jsonl`` — index width fixed for stable sorting.
_CHUNK_DIGITS = 5


def chunk_name(key: str, index: int) -> str:
    """File name of chunk ``index`` of job ``key``."""
    return f"{key}.rows-{index:0{_CHUNK_DIGITS}d}.jsonl"


def chunk_dir(root: Path | str, key: str) -> Path:
    """Directory holding job ``key``'s chunks (two-level fan-out)."""
    return Path(root) / key[:2]


def write_row_chunks(
    root: Path | str,
    key: str,
    rows: Iterable[dict[str, Any]],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> tuple[list[Path], int]:
    """Write ``rows`` as chunked JSONL under ``root``; returns (paths, count).

    Consumes ``rows`` exactly once and holds at most ``chunk_rows`` rows
    in memory, so a generator-producing figure streams straight to disk.
    Each chunk is written atomically; a crashed writer leaves at most a
    ``*.tmp.<pid>`` file behind, never a truncated chunk.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    directory = chunk_dir(root, key)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    count = 0
    iterator = iter(rows)
    for index in itertools.count():
        chunk = list(itertools.islice(iterator, chunk_rows))
        if not chunk:
            break
        path = directory / chunk_name(key, index)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w") as handle:
            for row in chunk:
                handle.write(json.dumps(row, separators=(",", ":")))
                handle.write("\n")
        os.replace(tmp, path)
        paths.append(path)
        count += len(chunk)
    return paths, count


def iter_chunk_rows(paths: Iterable[Path | str]) -> Iterator[dict[str, Any]]:
    """Stream rows from chunk files in order, one row in memory at a time."""
    for path in paths:
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)


class LazyRows:
    """A read-only, disk-backed stand-in for :class:`~repro.figures.Rows`.

    Iterating streams rows from the chunk files; ``len`` comes from the
    recorded count, so neither touches more than one chunk line at a
    time.  Rendering helpers mirror :class:`Rows`; ``to_csv``/``to_json``
    stream, ``to_table`` materializes (column widths need every row —
    tables are for humans and small results).  Equality materializes both
    sides, which keeps test assertions like ``rows == [...]`` working.
    """

    def __init__(self, paths: Iterable[Path | str], count: int) -> None:
        self.paths = [Path(p) for p in paths]
        self._count = int(count)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter_chunk_rows(self.paths)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __getitem__(self, index: int) -> dict[str, Any]:
        if isinstance(index, slice):
            return list(self)[index]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        for position, row in enumerate(self):
            if position == index:
                return row
        raise IndexError(index)  # pragma: no cover - count/files mismatch

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (LazyRows, list)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"LazyRows({self._count} rows in {len(self.paths)} chunk(s))"
        )

    def materialize(self) -> Rows:
        """Load every row into an eager :class:`Rows` (memory-unbounded)."""
        return Rows(self)

    # -- rendering (mirrors Rows) -----------------------------------------

    def to_csv(self) -> str:
        """Render as CSV text with a header row, streaming chunk by chunk."""
        iterator = iter(self)
        first = next(iterator, None)
        if first is None:
            return ""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(first.keys()))
        writer.writeheader()
        writer.writerow(first)
        writer.writerows(iterator)
        return buffer.getvalue()

    def to_json(self, indent: int | None = None) -> str:
        """Render as a JSON array of objects."""
        return json.dumps(list(self), indent=indent)

    def to_table(self) -> str:
        """Render as an aligned text table (materializes)."""
        return self.materialize().to_table()

    def render(self, fmt: str) -> str:
        """Render in one of :data:`repro.figures.FORMATS`."""
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json(indent=2)
        return self.materialize().render(fmt)

"""The parallel experiment engine.

Expands a (figure × seed × param-grid) request into :class:`Job` cells,
fans the uncached cells out over a ``multiprocessing`` pool, and returns a
:class:`SweepResult` pairing each job's :class:`~repro.figures.Rows` with a
:class:`~repro.runner.manifest.RunManifest` of cache and timing counters.

Results are deterministic and independent of the worker count: every job
is a pure function of ``(figure, seed, params, version)``, and rows are
reassembled in job order.  Cache lookups happen *before* dispatch, so a
warm-cache sweep performs zero figure recomputation.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from .. import obs
from ..figures import Rows, get_spec
from ..simcore.stats import collect as collect_stats
from .cache import ResultCache, cache_key
from .manifest import JobRecord, RunManifest


@dataclass(frozen=True)
class Job:
    """One (figure, seed, params) cell of a sweep.  Hashable."""

    figure: str
    seed: int
    #: Sorted ``(name, value)`` pairs; tuples keep the job hashable.
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def key(self) -> str:
        """Content address of this cell in the result cache."""
        return cache_key(self.figure, self.seed, self.params_dict)


@dataclass
class JobOutcome:
    """A job plus its rows and manifest record."""

    job: Job
    rows: Rows
    record: JobRecord


@dataclass
class SweepResult:
    """Everything a sweep produced, in job order."""

    outcomes: list[JobOutcome]
    manifest: RunManifest

    def rows_for(self, figure: str, seed: int | None = None) -> Rows:
        """Rows of the first outcome matching ``figure`` (and ``seed``)."""
        for outcome in self.outcomes:
            if outcome.job.figure == figure and (
                seed is None or outcome.job.seed == seed
            ):
                return outcome.rows
        raise KeyError(f"no outcome for figure {figure!r}")


def make_job(
    figure: str, seed: int = 0, params: Mapping[str, Any] | None = None
) -> Job:
    """Validate ``figure``/``params`` against the spec and build a job."""
    resolved = get_spec(figure).resolve(params)
    return Job(
        figure=figure,
        seed=seed,
        params=tuple(sorted(resolved.items())),
    )


def expand_grid(
    figures: Sequence[str],
    seeds: Iterable[int] = (0,),
    grid: Mapping[str, Sequence[Any]] | None = None,
) -> list[Job]:
    """Expand figures × seeds × parameter grid into concrete jobs.

    ``grid`` maps parameter names to lists of values.  A grid parameter is
    applied to every selected figure that declares it; figures that do not
    declare it run once with their defaults.  A parameter no selected
    figure declares is an error (it would otherwise sweep nothing).
    """
    grid = dict(grid or {})
    seeds = list(seeds)
    specs = [get_spec(name) for name in figures]
    if grid:
        declared = {p.name for spec in specs for p in spec.params}
        unknown = sorted(set(grid) - declared)
        if unknown:
            raise ValueError(
                f"grid parameter(s) {', '.join(unknown)} not declared by any "
                f"selected figure ({', '.join(s.name for s in specs)})"
            )
    jobs: list[Job] = []
    for spec in specs:
        names = [p.name for p in spec.params if p.name in grid]
        values = [
            [spec.param(name).coerce(v) for v in grid[name]] for name in names
        ]
        for seed in seeds:
            for combo in itertools.product(*values) if names else [()]:
                overrides = dict(zip(names, combo))
                jobs.append(make_job(spec.name, seed=seed, params=overrides))
    return jobs


def ensure_writable_dir(path: Path | str, purpose: str) -> Path:
    """Create ``path`` and prove it is writable, or raise a friendly error.

    Probing up front keeps unwritable output locations from surfacing as a
    raw ``OSError`` deep inside a pool worker halfway through a sweep.
    """
    directory = Path(path)
    probe = directory / ".repro-write-probe"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe.write_text("")
        probe.unlink()
    except OSError as exc:
        raise ValueError(
            f"{purpose} directory {directory} is not writable ({exc}); "
            f"choose a writable location"
        ) from None
    return directory


def _trace_stem(figure: str, seed: int, index: int) -> str:
    return f"{figure.replace('-', '_')}.seed{seed}.job{index}"


def _compute(
    payload: tuple[
        int, str, int, tuple[tuple[str, Any], ...], str | None, bool
    ]
):
    """Pool worker: run one figure job and return (index, result dict)."""
    index, figure, seed, params, trace_dir, profile = payload
    spec = get_spec(figure)
    observe = trace_dir is not None or profile
    start = time.perf_counter()
    with collect_stats() as stats:
        if observe:
            with obs.capture(profile=profile) as cap:
                with cap.tracer.span(
                    "runner.job", figure=figure, seed=seed, **dict(params)
                ):
                    rows = spec.run(seed=seed, **dict(params))
        else:
            rows = spec.run(seed=seed, **dict(params))
    result: dict[str, Any] = {
        "rows": list(rows),
        "stats": stats.as_dict(),
        "wall_time_s": time.perf_counter() - start,
        "verdict": spec.verdict(rows) if spec.verdict is not None else None,
    }
    if observe:
        result["metrics"] = cap.registry.snapshot()
        if cap.profiler is not None:
            result["hotspots"] = cap.profiler.as_rows()
        if trace_dir is not None:
            stem = _trace_stem(figure, seed, index)
            trace_path = Path(trace_dir) / f"{stem}.trace.json"
            cap.tracer.write_chrome(trace_path)
            cap.tracer.write_jsonl(Path(trace_dir) / f"{stem}.trace.jsonl")
            result["trace_path"] = str(trace_path)
    return index, result


def run_jobs(
    jobs: Sequence[Job],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[JobRecord], None] | None = None,
    trace_dir: Path | str | None = None,
    profile: bool = False,
) -> SweepResult:
    """Execute ``jobs``, serving repeats from ``cache`` when given.

    ``workers`` defaults to ``os.cpu_count()``; values <= 1 (or a single
    pending job) run inline, which keeps single-job invocations free of
    pool overhead and easy to debug.

    ``trace_dir`` enables span tracing per job and writes one Chrome
    trace-event file (plus a JSONL twin) per computed job into it.
    ``profile`` additionally times every simulator event callback and
    attaches a hot-spot table to each job record.  Either flag also embeds
    a ``repro.obs`` metrics snapshot in the manifest (schema v2).  Cached
    jobs are *not* recomputed to obtain observability data.
    """
    workers = workers if workers is not None else (os.cpu_count() or 1)
    start = time.perf_counter()
    if trace_dir is not None:
        trace_dir = str(ensure_writable_dir(trace_dir, "trace output"))
    keys = [job.key() for job in jobs]
    outcomes: list[JobOutcome | None] = [None] * len(jobs)

    pending: list[
        tuple[int, str, int, tuple[tuple[str, Any], ...], str | None, bool]
    ] = []
    for index, (job, key) in enumerate(zip(jobs, keys)):
        rows = cache.get(key) if cache is not None else None
        if rows is not None:
            # Verdicts are a pure function of the rows, so cache hits are
            # re-judged rather than recomputed.
            judge = get_spec(job.figure).verdict
            record = JobRecord(
                figure=job.figure,
                seed=job.seed,
                params=job.params_dict,
                key=key,
                cached=True,
                wall_time_s=0.0,
                rows=len(rows),
                verdict=judge(rows) if judge is not None else None,
            )
            outcomes[index] = JobOutcome(job=job, rows=rows, record=record)
            if progress is not None:
                progress(record)
        else:
            pending.append(
                (index, job.figure, job.seed, job.params, trace_dir, profile)
            )

    def _finish(index: int, result: dict[str, Any]) -> None:
        job = jobs[index]
        rows = Rows(result["rows"])
        if cache is not None:
            cache.put(
                keys[index], rows,
                figure=job.figure, seed=job.seed, params=job.params_dict,
            )
        record = JobRecord(
            figure=job.figure,
            seed=job.seed,
            params=job.params_dict,
            key=keys[index],
            cached=False,
            wall_time_s=result["wall_time_s"],
            rows=len(rows),
            stats=result["stats"],
            metrics=result.get("metrics"),
            hotspots=result.get("hotspots"),
            trace_path=result.get("trace_path"),
            verdict=result.get("verdict"),
        )
        outcomes[index] = JobOutcome(job=job, rows=rows, record=record)
        if progress is not None:
            progress(record)

    if pending:
        if min(workers, len(pending)) <= 1:
            for payload in pending:
                _finish(*_compute(payload))
        else:
            with multiprocessing.Pool(processes=workers) as pool:
                for index, result in pool.imap_unordered(
                    _compute, pending, chunksize=1
                ):
                    _finish(index, result)

    done = [outcome for outcome in outcomes if outcome is not None]
    manifest = RunManifest(
        workers=workers,
        cache_dir=str(cache.root) if cache is not None else None,
        wall_time_s=time.perf_counter() - start,
        records=[outcome.record for outcome in done],
    )
    return SweepResult(outcomes=done, manifest=manifest)

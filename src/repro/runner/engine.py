"""The parallel experiment engine.

Expands a (figure × seed × param-grid) request into :class:`Job` cells,
fans the uncached cells out over a supervised
:class:`~concurrent.futures.ProcessPoolExecutor`, and returns a
:class:`SweepResult` pairing each job's :class:`~repro.figures.Rows` with a
:class:`~repro.runner.manifest.RunManifest` of cache and timing counters.

Results are deterministic and independent of the worker count: every job
is a pure function of ``(figure, seed, params, version)``, and rows are
reassembled in job order.  Cache lookups happen *before* dispatch, so a
warm-cache sweep performs zero figure recomputation.

Execution is fault tolerant (see :mod:`repro.runner.supervisor`): a
raising figure, a hung job, or a dying worker process becomes a
``failed``/``timeout`` :class:`~repro.runner.manifest.JobRecord` instead
of aborting the sweep, bounded retries rerun failed cells after a
deterministic backoff, the manifest can be checkpointed after every
completed job, and ``resume_from=`` skips cells an earlier (possibly
interrupted or degraded) run already completed.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..figures import Rows, get_spec
from ..simcore.stats import collect as collect_stats
from .. import obs
from .backends import (
    ExecutorBackend,
    LocalPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .cache import ResultCache, cache_key
from .manifest import JobRecord, RunManifest
from .rowstream import DEFAULT_CHUNK_ROWS, LazyRows, write_row_chunks
from .supervisor import (
    OK_STATUSES,
    STATUS_CACHED,
    STATUS_OK,
    RetryPolicy,
    Task,
)


@dataclass(frozen=True)
class Job:
    """One (figure, seed, params) cell of a sweep.  Hashable."""

    figure: str
    seed: int
    #: Sorted ``(name, value)`` pairs; tuples keep the job hashable.
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def key(self) -> str:
        """Content address of this cell in the result cache."""
        return cache_key(self.figure, self.seed, self.params_dict)


@dataclass
class JobOutcome:
    """A job plus its rows and manifest record.

    ``rows`` is an eager :class:`~repro.figures.Rows` for in-memory runs
    and a disk-backed :class:`~repro.runner.rowstream.LazyRows` when the
    sweep streamed rows; both iterate, measure, render, and compare the
    same way.
    """

    job: Job
    rows: "Rows | LazyRows"
    record: JobRecord


@dataclass
class SweepResult:
    """Everything a sweep produced, in job order.

    Failed cells are *included*: their outcomes carry empty rows and a
    record with ``status`` ``"failed"``/``"timeout"`` plus the error.  Use
    :attr:`failures` (or ``manifest.degraded``) to detect partial results.
    """

    outcomes: list[JobOutcome]
    manifest: RunManifest

    @property
    def failures(self) -> list[JobOutcome]:
        """Outcomes whose job failed or timed out, in job order."""
        return [o for o in self.outcomes if not o.record.ok]

    @property
    def ok(self) -> bool:
        """Whether every cell completed (computed or cached)."""
        return not self.failures

    def rows_for(
        self, figure: str, seed: int | None = None
    ) -> "Rows | LazyRows":
        """Rows of the first *completed* outcome matching ``figure``
        (and ``seed``); failed cells raise with their recorded error."""
        failed: JobOutcome | None = None
        for outcome in self.outcomes:
            if outcome.job.figure == figure and (
                seed is None or outcome.job.seed == seed
            ):
                if outcome.record.ok:
                    return outcome.rows
                failed = failed or outcome
        requested = (
            f"figure {figure!r}"
            if seed is None
            else f"figure {figure!r} seed {seed}"
        )
        if failed is not None:
            raise KeyError(
                f"outcome for {requested} is {failed.record.status}: "
                f"{failed.record.error or 'unknown error'}"
            )
        available = sorted(
            {(o.job.figure, o.job.seed) for o in self.outcomes}
        )
        listing = ", ".join(f"{f} (seed {s})" for f, s in available) or "none"
        raise KeyError(
            f"no outcome for {requested}; available: {listing}"
        )


def make_job(
    figure: str, seed: int = 0, params: Mapping[str, Any] | None = None
) -> Job:
    """Validate ``figure``/``params`` against the spec and build a job."""
    resolved = get_spec(figure).resolve(params)
    return Job(
        figure=figure,
        seed=seed,
        params=tuple(sorted(resolved.items())),
    )


class JobGrid:
    """A lazy, re-iterable expansion of figures × seeds × parameter grid.

    Validation (unknown figures, undeclared grid parameters, value
    coercion) happens eagerly at construction so errors surface where the
    grid is written, but the :class:`Job` cells themselves are generated
    on demand: ``len()`` is computed arithmetically and iterating never
    holds more than one job in memory.  The grid can be iterated any
    number of times (every pass yields identical jobs in identical
    order), sliced, and indexed — consumers that need a list can just
    call ``list(grid)``.
    """

    def __init__(
        self,
        figures: Sequence[str],
        seeds: Iterable[int] = (0,),
        grid: Mapping[str, Sequence[Any]] | None = None,
    ) -> None:
        grid = dict(grid or {})
        self._seeds = list(seeds)
        specs = [get_spec(name) for name in figures]
        if grid:
            declared = {p.name for spec in specs for p in spec.params}
            unknown = sorted(set(grid) - declared)
            if unknown:
                raise ValueError(
                    f"grid parameter(s) {', '.join(unknown)} not declared "
                    f"by any selected figure "
                    f"({', '.join(s.name for s in specs)})"
                )
        #: Per-figure plan: (name, grid param names, coerced value lists).
        self._plan: list[tuple[str, list[str], list[list[Any]]]] = []
        for spec in specs:
            names = [p.name for p in spec.params if p.name in grid]
            values = [
                [spec.param(name).coerce(v) for v in grid[name]]
                for name in names
            ]
            self._plan.append((spec.name, names, values))

    def __len__(self) -> int:
        total = 0
        for _, _, values in self._plan:
            combos = 1
            for column in values:
                combos *= len(column)
            total += combos * len(self._seeds)
        return total

    def __iter__(self):
        for name, names, values in self._plan:
            for seed in self._seeds:
                for combo in itertools.product(*values) if names else [()]:
                    overrides = dict(zip(names, combo))
                    yield make_job(name, seed=seed, params=overrides)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(itertools.islice(
                iter(self), *index.indices(len(self))
            ))
        size = len(self)
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError(index)
        return next(itertools.islice(iter(self), index, None))

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (JobGrid, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        figures = ", ".join(name for name, _, _ in self._plan)
        return f"JobGrid({len(self)} jobs over [{figures}])"


def expand_grid(
    figures: Sequence[str],
    seeds: Iterable[int] = (0,),
    grid: Mapping[str, Sequence[Any]] | None = None,
) -> JobGrid:
    """Expand figures × seeds × parameter grid into concrete jobs.

    ``grid`` maps parameter names to lists of values.  A grid parameter is
    applied to every selected figure that declares it; figures that do not
    declare it run once with their defaults.  A parameter no selected
    figure declares is an error (it would otherwise sweep nothing).

    Returns a lazy :class:`JobGrid` — sized, sliceable, and re-iterable
    like the list this function used to build, but generating cells on
    demand so a million-cell grid costs no memory until executed.
    """
    return JobGrid(figures, seeds=seeds, grid=grid)


def shard_jobs(
    jobs: Iterable[Job], shards: int
) -> list[list[Job]]:
    """Deal ``jobs`` round-robin into ``shards`` ordered buckets.

    The assignment depends only on job order and shard count — every
    participant in a distributed sweep computes the same split without
    coordination, and a single pass over a lazy :class:`JobGrid` (or any
    one-shot iterator) suffices.  Buckets may be empty when there are
    fewer jobs than shards; concatenating buckets index-by-index
    round-robin restores the original order.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    buckets: list[list[Job]] = [[] for _ in range(shards)]
    for position, job in enumerate(jobs):
        buckets[position % shards].append(job)
    return buckets


#: Monotonic suffix keeping concurrent probes in one process distinct.
_PROBE_COUNTER = itertools.count()


def ensure_writable_dir(path: Path | str, purpose: str) -> Path:
    """Create ``path`` and prove it is writable, or raise a friendly error.

    Probing up front keeps unwritable output locations from surfacing as a
    raw ``OSError`` deep inside a pool worker halfway through a sweep.
    The probe name is PID+counter-unique so two sweeps probing the same
    directory concurrently cannot unlink each other's probe file.
    """
    directory = Path(path)
    probe = directory / (
        f".repro-write-probe.{os.getpid()}.{next(_PROBE_COUNTER)}"
    )
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe.write_text("")
        probe.unlink()
    except OSError as exc:
        raise ValueError(
            f"{purpose} directory {directory} is not writable ({exc}); "
            f"choose a writable location"
        ) from None
    return directory


def _trace_stem(figure: str, seed: int, index: int) -> str:
    return f"{figure.replace('-', '_')}.seed{seed}.job{index}"


def _compute(
    payload: tuple[
        int, str, int, tuple[tuple[str, Any], ...], str | None, bool,
        str | None, int, str, str | None, int,
    ]
):
    """Worker: run one figure job and return (index, result dict).

    Runs inside whatever executor backend the sweep chose — a forked pool
    worker, a ``repro worker`` subprocess, or the supervising process
    itself.  When the payload carries a stream root, the rows are written
    as content-addressed JSONL chunks (see :mod:`.rowstream`) and the
    result references them (``row_chunks``/``rows_count``) instead of
    carrying the rows inline — the supervising process never holds them.

    Accepts the pre-streaming 8-tuple payload too (no key/stream fields),
    so externally recorded payloads keep replaying.
    """
    (index, figure, seed, params, trace_dir, profile,
     telemetry_dir, telemetry_interval) = payload[:8]
    key = payload[8] if len(payload) > 8 else None
    stream_root = payload[9] if len(payload) > 9 else None
    chunk_rows = payload[10] if len(payload) > 10 else DEFAULT_CHUNK_ROWS
    # Sweep-trace span context (PR-10): present only when the sweep runs
    # with tracing on, so payloads — and therefore results — are
    # byte-identical with tracing off.
    span_ctx = payload[11] if len(payload) > 11 else None
    if not isinstance(span_ctx, dict):
        span_ctx = None
    spec = get_spec(figure)
    observe = trace_dir is not None or profile
    hub = None
    if telemetry_dir is not None:
        # Seed the postcard sampler from the job seed: a fixed (job, seed)
        # cell samples the same packets on every run.
        hub = obs.TelemetryHub(interval=telemetry_interval, seed=seed)
    start = time.perf_counter()
    with collect_stats() as stats:
        if observe or hub is not None:
            span_args = dict(params)
            if span_ctx is not None:
                # Stamping the engine-minted ids onto the child-side job
                # span is what correlates this process's Chrome trace
                # with the parent's sweep.events.jsonl.
                span_args["trace"] = span_ctx.get("trace")
                span_args["span"] = span_ctx.get("span")
            with obs.capture(
                metrics=observe, tracing=observe, profile=profile,
                telemetry=hub,
            ) as cap:
                with cap.tracer.span(
                    "runner.job", figure=figure, seed=seed, **span_args
                ):
                    rows = spec.run(seed=seed, **dict(params))
        else:
            rows = spec.run(seed=seed, **dict(params))
    verdict = spec.verdict(rows) if spec.verdict is not None else None
    result: dict[str, Any] = {
        "stats": stats.as_dict(),
        "wall_time_s": time.perf_counter() - start,
        "verdict": verdict,
    }
    if span_ctx is not None:
        result["worker_pid"] = os.getpid()
        result["span"] = span_ctx.get("span")
    if stream_root is not None:
        chunk_paths, count = write_row_chunks(
            stream_root, key, rows, chunk_rows
        )
        result["row_chunks"] = [str(path) for path in chunk_paths]
        result["rows_count"] = count
    else:
        result["rows"] = list(rows)
    if observe:
        result["metrics"] = cap.registry.snapshot()
        if cap.profiler is not None:
            result["hotspots"] = cap.profiler.as_rows()
        if trace_dir is not None:
            stem = _trace_stem(figure, seed, index)
            trace_path = Path(trace_dir) / f"{stem}.trace.json"
            cap.tracer.write_chrome(trace_path)
            cap.tracer.write_jsonl(Path(trace_dir) / f"{stem}.trace.jsonl")
            result["trace_path"] = str(trace_path)
    if hub is not None:
        if verdict == "fail":
            # Freeze the fabric's recent history next to the bad verdict.
            hub.flight.snapshot(f"verdict.fail:{figure}")
        stem = _trace_stem(figure, seed, index)
        hub.write_postcards_jsonl(
            Path(telemetry_dir) / f"{stem}.postcards.jsonl"
        )
        telemetry_path = Path(telemetry_dir) / f"{stem}.telemetry.json"
        hub.write_snapshot(telemetry_path)
        result["telemetry_path"] = str(telemetry_path)
        result["telemetry"] = hub.summary(
            sim_time_ns=stats.as_dict().get("sim_time_ns")
        )
    return index, result


def _resumable_keys(resume_from: RunManifest | Path | str | None) -> set[str]:
    """Cache keys an earlier run completed (status ok/cached)."""
    if resume_from is None:
        return set()
    if not isinstance(resume_from, RunManifest):
        resume_from = RunManifest.load(resume_from)
    return {record.key for record in resume_from.records if record.ok}


def run_jobs(
    jobs: Iterable[Job],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[JobRecord], None] | None = None,
    trace_dir: Path | str | None = None,
    profile: bool = False,
    *,
    backend: "str | ExecutorBackend | None" = None,
    stream_rows: Path | str | bool | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    telemetry_dir: Path | str | None = None,
    telemetry_interval: int = 64,
    timeout_s: float | None = None,
    retries: int = 0,
    backoff: RetryPolicy | float | None = None,
    resume_from: RunManifest | Path | str | None = None,
    checkpoint: Path | str | None = None,
    status_path: Path | str | None = None,
    sweeptrace: Path | str | None = None,
) -> SweepResult:
    """Execute ``jobs``, serving repeats from ``cache`` when given.

    ``jobs`` may be any iterable of :class:`Job` — a list, a lazy
    :class:`JobGrid` from :func:`expand_grid`, or a one-shot generator;
    it is consumed exactly once.

    **Executor backends:** ``backend`` selects how pending cells execute
    — a spec string (``"serial"``, ``"local-pool[:N]"``,
    ``"subprocess:N"``), an :class:`ExecutorBackend` instance, or
    ``None``/"auto", which consults the ``REPRO_BACKEND`` environment
    variable and otherwise picks for itself: ``workers`` <= 1 (or a
    single pending job) runs serially in-process, which keeps single-job
    invocations free of pool overhead and easy to debug; anything bigger
    uses the supervised local pool.  Setting ``timeout_s`` forces the
    pool even for one auto-selected job — a hung job can only be killed
    from outside its process.  Results, manifests, retries, and
    checkpoints are identical across backends (enforced by the
    backend-conformance suite); each computed record notes its backend.

    **Streaming rows:** ``stream_rows`` routes each job's rows through
    content-addressed chunked JSONL files (``chunk_rows`` rows per chunk,
    see :mod:`repro.runner.rowstream`) instead of shipping them through
    the supervising process — peak memory stays flat in grid size.  Pass
    a directory, or ``True`` to use ``cache.rows_dir()`` (requires
    ``cache``).  Outcomes then carry :class:`LazyRows` (iterate/render
    identically to eager rows) and records list their ``row_chunks``.

    **Fault tolerance** (see :mod:`repro.runner.supervisor`): a raising
    figure, a job exceeding ``timeout_s``, or a worker process dying
    yields a record with ``status`` ``"failed"``/``"timeout"`` (plus
    ``error``/``traceback``) instead of aborting the sweep.  ``retries``
    grants each job that many additional attempts, spaced by a
    deterministic exponential backoff (``backoff`` is either a base delay
    in seconds or a full :class:`RetryPolicy`); retries rerun the exact
    same payload, so simulation seeds and results are never perturbed.

    **Checkpoint/resume:** ``checkpoint`` names a manifest file flushed
    atomically after *every* completed job, so an interrupted sweep loses
    at most the in-flight work.  ``resume_from`` takes a manifest (object
    or path) from an earlier run and skips every cell it already
    completed, re-serving its rows from ``cache`` — cells whose rows are
    not cached are recomputed, and failed cells always rerun.

    ``trace_dir`` enables span tracing per job and writes one Chrome
    trace-event file (plus a JSONL twin) per computed job into it.
    ``profile`` additionally times every simulator event callback and
    attaches a hot-spot table to each job record.  Either flag also embeds
    a ``repro.obs`` metrics snapshot in the manifest.  Cached jobs are
    *not* recomputed to obtain observability data.

    **In-band network telemetry:** ``telemetry_dir`` activates a
    :class:`repro.obs.TelemetryHub` per computed job (postcard sampling
    1-in-``telemetry_interval``, seeded by the job seed) and writes one
    ``<stem>.postcards.jsonl`` INT sink plus one ``<stem>.telemetry.json``
    snapshot (samplers + flight recorder) into it; a digest lands on each
    job record (``telemetry``/``telemetry_path``) and surfaces in
    ``repro report``'s "Network telemetry" section.  A failing figure
    verdict snapshots the flight recorder automatically.

    **Live telemetry:** ``status_path`` names a
    :mod:`repro.obs.status` heartbeat file rewritten atomically on every
    job start, retry, and completion (ok/failed/cached/retry counts,
    in-flight cells, an ETA from completed-job durations), consumed by
    ``repro obs tail --follow``.  The writer lives in the supervising
    process only; job payloads, cache keys, and results are untouched.

    **Sweep tracing:** ``sweeptrace`` names an append-only
    ``sweep.events.jsonl`` (schema ``repro.obs/sweeptrace/v1``, see
    :mod:`repro.obs.sweeptrace`) capturing the control plane's full
    lifecycle — submission, queueing, every execution attempt with its
    outcome, retries with their backoff delays, worker spawn/ready/death,
    checkpoint writes, and cache hits — under a deterministic run-level
    trace id with one span id per job.  Job payloads gain a trailing
    span-context element (absent with tracing off, so results are
    byte-identical either way), computed records gain
    ``queue_s``/``compute_s``/``attempt_timings``/``span``, and ``repro
    obs timeline`` turns the file into a per-worker Gantt view with a
    critical-path phase breakdown.
    """
    jobs = list(jobs)
    workers = workers if workers is not None else (os.cpu_count() or 1)
    start = time.perf_counter()
    stream_root: str | None = None
    if stream_rows:
        if isinstance(stream_rows, (str, Path)):
            stream_root = str(ensure_writable_dir(stream_rows, "row stream"))
        elif cache is not None:
            stream_root = str(
                ensure_writable_dir(cache.rows_dir(), "row stream")
            )
        else:
            raise ValueError(
                "stream_rows=True streams into the cache's row store; pass "
                "a cache, or give stream_rows an explicit directory"
            )
    if trace_dir is not None:
        trace_dir = str(ensure_writable_dir(trace_dir, "trace output"))
    if telemetry_dir is not None:
        telemetry_dir = str(
            ensure_writable_dir(telemetry_dir, "telemetry output")
        )
    if checkpoint is not None:
        checkpoint = Path(checkpoint)
        ensure_writable_dir(checkpoint.parent, "manifest checkpoint")
    status: Any = None
    if status_path is not None:
        from ..obs.status import SweepStatus

        ensure_writable_dir(Path(status_path).parent, "status heartbeat")
        status = SweepStatus(status_path, total=len(jobs), workers=workers)
    if isinstance(backoff, RetryPolicy):
        policy = backoff
    else:
        policy = RetryPolicy(
            retries=retries,
            timeout_s=timeout_s,
            **({"backoff_base_s": backoff} if backoff is not None else {}),
        )
    chosen = resolve_backend(backend, workers=workers)
    #: Recorded on each computed JobRecord; stays None for cache hits.
    backend_name: str | None = None
    resume_keys = _resumable_keys(resume_from)
    keys = [job.key() for job in jobs]
    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    recorder: Any = None
    if sweeptrace is not None:
        from ..obs.sweeptrace import SweepTraceRecorder

        sweeptrace = Path(sweeptrace)
        ensure_writable_dir(sweeptrace.parent, "sweep trace")
        recorder = SweepTraceRecorder(
            sweeptrace, keys, total=len(jobs), workers=workers
        )

    def _flush_checkpoint() -> None:
        if checkpoint is None:
            return
        flush_start = time.perf_counter()
        manifest = RunManifest(
            workers=workers,
            cache_dir=str(cache.root) if cache is not None else None,
            wall_time_s=time.perf_counter() - start,
            records=[o.record for o in outcomes if o is not None],
        )
        tmp = checkpoint.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(manifest.to_json() + "\n")
        os.replace(tmp, checkpoint)
        if recorder is not None:
            recorder.checkpoint(
                done=sum(1 for o in outcomes if o is not None),
                dur_s=time.perf_counter() - flush_start,
            )

    def _complete(index: int, outcome: JobOutcome) -> None:
        outcomes[index] = outcome
        _flush_checkpoint()
        if status is not None:
            status.job_finished(index, outcome.record)
        if progress is not None:
            progress(outcome.record)

    pending: list[
        tuple[
            int, str, int, tuple[tuple[str, Any], ...], str | None, bool,
            str | None, int, str, str | None, int,
        ]
    ] = []
    for index, (job, key) in enumerate(zip(jobs, keys)):
        rows = None
        hit_start = time.perf_counter()
        if cache is not None and (resume_from is None or key in resume_keys):
            # On resume only previously-completed cells may be served from
            # cache; failed cells must recompute even if some stale entry
            # exists under their key.
            rows = cache.get(key)
        if rows is not None:
            # Verdicts are a pure function of the rows, so cache hits are
            # re-judged rather than recomputed.
            judge = get_spec(job.figure).verdict
            verdict = judge(rows) if judge is not None else None
            # The record carries the *actual* cache-service time (lookup
            # + re-judging), not a hard-coded 0.0: consumers computing
            # ETAs must exclude hits by their ``cached``/``status``
            # marking, not rely on a zero sentinel deflating the mean.
            hit_wall = time.perf_counter() - hit_start
            record = JobRecord(
                figure=job.figure,
                seed=job.seed,
                params=job.params_dict,
                key=key,
                cached=True,
                wall_time_s=hit_wall,
                rows=len(rows),
                verdict=verdict,
                status=STATUS_CACHED,
                span=recorder.span_for(index) if recorder is not None
                else None,
            )
            if recorder is not None:
                recorder.cache_hit(index, job.figure, job.seed, hit_wall)
            _complete(index, JobOutcome(job=job, rows=rows, record=record))
        else:
            payload = (
                index, job.figure, job.seed, job.params, trace_dir,
                profile, telemetry_dir, telemetry_interval,
                key, stream_root, chunk_rows,
            )
            if recorder is not None:
                recorder.job_submitted(
                    index, job.figure, job.seed, position=len(pending)
                )
                payload = payload + (recorder.span_context(index),)
            pending.append(payload)

    def _finish(index: int, result: dict[str, Any]) -> None:
        job = jobs[index]
        status = result.get("status", STATUS_OK)
        timings: dict[str, Any] = {}
        if recorder is not None:
            if status in OK_STATUSES:
                # Failed/timed-out attempts closed inside the backend
                # (charge_failure); successes close here, where the
                # engine first sees the result.
                recorder.attempt_end(
                    index,
                    outcome="ok",
                    wall_s=result.get("wall_time_s"),
                    pid=result.get("worker_pid"),
                )
            timings = recorder.timings_for(index)
            timings["span"] = recorder.span_for(index)
        if status in OK_STATUSES:
            rows: Rows | LazyRows
            if "row_chunks" in result:
                # The worker streamed the rows to disk; only paths and a
                # count cross back into the supervising process.
                rows = LazyRows(result["row_chunks"], result["rows_count"])
                if cache is not None:
                    cache.put_streamed(
                        keys[index], result["row_chunks"],
                        result["rows_count"],
                        figure=job.figure, seed=job.seed,
                        params=job.params_dict,
                    )
            else:
                rows = Rows(result["rows"])
                if cache is not None:
                    cache.put(
                        keys[index], rows,
                        figure=job.figure, seed=job.seed,
                        params=job.params_dict,
                    )
            record = JobRecord(
                figure=job.figure,
                seed=job.seed,
                params=job.params_dict,
                key=keys[index],
                cached=False,
                wall_time_s=result["wall_time_s"],
                rows=len(rows),
                stats=result["stats"],
                metrics=result.get("metrics"),
                hotspots=result.get("hotspots"),
                trace_path=result.get("trace_path"),
                verdict=result.get("verdict"),
                telemetry=result.get("telemetry"),
                telemetry_path=result.get("telemetry_path"),
                backend=backend_name,
                row_chunks=result.get("row_chunks"),
                attempts=result.get("attempts", 1),
                queue_s=timings.get("queue_s"),
                compute_s=timings.get("compute_s"),
                attempt_timings=timings.get("attempt_timings"),
                span=timings.get("span"),
            )
        else:
            # Failed or timed out after exhausting the retry budget: the
            # cell contributes an empty Rows and a diagnostic record, and
            # the sweep carries on.
            record = JobRecord(
                figure=job.figure,
                seed=job.seed,
                params=job.params_dict,
                key=keys[index],
                cached=False,
                wall_time_s=result.get("wall_time_s", 0.0),
                rows=0,
                status=status,
                error=result.get("error"),
                traceback=result.get("traceback"),
                backend=backend_name,
                attempts=result.get("attempts", 1),
                queue_s=timings.get("queue_s"),
                compute_s=timings.get("compute_s"),
                attempt_timings=timings.get("attempt_timings"),
                span=timings.get("span"),
            )
            rows = Rows()
        _complete(index, JobOutcome(job=job, rows=rows, record=record))

    def _on_event(kind: str, task: Task | None, info: Any = None) -> None:
        # Fan the backend's lifecycle channel out to both consumers: the
        # status heartbeat (start/retry only) and the sweep-trace
        # recorder (everything).  ``task`` is None for worker-level
        # events, which only the recorder cares about.
        if recorder is not None:
            recorder.handle(kind, task, info)
        if status is None or task is None:
            return
        job = jobs[task.index]
        label = " ".join(
            [job.figure, f"seed={job.seed}"]
            + [f"{k}={v}" for k, v in job.params]
        )
        if kind == "start":
            status.job_started(task.index, label)
        elif kind == "retry":
            status.job_retried(task.index, label)

    if pending:
        tasks = [
            Task(
                index=payload[0],
                payload=payload,
                key=keys[payload[0]],
                figure=payload[1],
            )
            for payload in pending
        ]
        on_event = (
            _on_event
            if status is not None or recorder is not None
            else None
        )
        if chosen is None:
            # Auto: tiny sweeps run serially in-process (no pool
            # overhead, trivially debuggable); timeouts force the pool —
            # a hung job can only be killed from outside its process.
            inline = (
                min(workers, len(pending)) <= 1 and policy.timeout_s is None
            )
            chosen = (
                SerialBackend() if inline
                else LocalPoolBackend(workers=max(workers, 1))
            )
        backend_name = chosen.name
        if status is not None:
            status.backend = backend_name
        chosen.run(tasks, _compute, policy, _finish, on_event=on_event)

    done = [outcome for outcome in outcomes if outcome is not None]
    manifest = RunManifest(
        workers=workers,
        cache_dir=str(cache.root) if cache is not None else None,
        wall_time_s=time.perf_counter() - start,
        records=[outcome.record for outcome in done],
    )
    result = SweepResult(outcomes=done, manifest=manifest)
    if checkpoint is not None:
        _flush_checkpoint()
    if status is not None:
        status.finalize()
    if recorder is not None:
        records = manifest.records
        recorder.finalize(
            wall_s=manifest.wall_time_s,
            ok=sum(
                1 for r in records if r.status == STATUS_OK and not r.cached
            ),
            failed=manifest.failed,
            cached=manifest.cache_hits,
            backend=backend_name,
        )
    return result

"""Parallel experiment engine with content-addressed result caching.

Public API:

- :func:`expand_grid` / :func:`make_job` — turn (figures × seeds × params)
  into concrete :class:`Job` cells, validated against the
  :class:`~repro.figures.FigureSpec` registry.
- :func:`run_jobs` — execute jobs across a supervised process pool,
  serving repeats from a :class:`ResultCache`, returning a
  :class:`SweepResult` (rows per job + a :class:`RunManifest`); supports
  per-job timeouts, bounded deterministic retries, incremental manifest
  checkpointing, and resuming an interrupted or degraded sweep.
- :class:`RetryPolicy` — timeout/retry/backoff knobs for
  :func:`run_jobs` (see :mod:`repro.runner.supervisor`).
- :class:`ResultCache` / :func:`cache_key` — the on-disk cache.
- :class:`RunManifest` / :class:`JobRecord` — the JSON run manifest
  (schema :data:`MANIFEST_SCHEMA`, with per-job ``status``).
- :class:`ExecutorBackend` + :func:`resolve_backend` — pluggable
  executors (:class:`SerialBackend`, :class:`LocalPoolBackend`,
  :class:`SubprocessWorkerBackend`); specs like ``"subprocess:2"`` come
  from ``--backend`` / the ``REPRO_BACKEND`` env var.
- :func:`shard_jobs` — deterministic round-robin split of a job list
  (or lazy :class:`JobGrid`) across distributed participants.
- :class:`LazyRows` / :func:`write_row_chunks` — disk-backed streaming
  rows (see :mod:`repro.runner.rowstream`), used when ``run_jobs`` runs
  with ``stream_rows=``.

Example::

    from repro.runner import ResultCache, expand_grid, run_jobs

    jobs = expand_grid(["fig4-delay", "fig5"], seeds=[0, 1],
                       grid={"cycles": [100, 400]})
    result = run_jobs(jobs, workers=4, cache=ResultCache("/tmp/cache"),
                      timeout_s=120.0, retries=1,
                      checkpoint="sweep-manifest.json")
    if not result.ok:
        for outcome in result.failures:
            print(outcome.job, outcome.record.error)
    # Later: rerun only what failed.
    result = run_jobs(jobs, cache=ResultCache("/tmp/cache"),
                      resume_from="sweep-manifest.json")
"""

from .backends import (
    BACKEND_AUTO,
    BACKEND_ENV,
    ExecutorBackend,
    LocalPoolBackend,
    SerialBackend,
    SubprocessWorkerBackend,
    parse_backend_spec,
    resolve_backend,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from .engine import (
    Job,
    JobGrid,
    JobOutcome,
    SweepResult,
    ensure_writable_dir,
    expand_grid,
    make_job,
    run_jobs,
    shard_jobs,
)
from .rowstream import (
    DEFAULT_CHUNK_ROWS,
    LazyRows,
    iter_chunk_rows,
    write_row_chunks,
)
from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_SCHEMA_V2,
    READABLE_SCHEMAS,
    JobRecord,
    RunManifest,
)
from .supervisor import (
    OK_STATUSES,
    RETRIES_COUNTER,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RetryPolicy,
)

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHUNK_ROWS",
    "ExecutorBackend",
    "Job",
    "JobGrid",
    "JobOutcome",
    "JobRecord",
    "LazyRows",
    "LocalPoolBackend",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "MANIFEST_SCHEMA_V2",
    "OK_STATUSES",
    "READABLE_SCHEMAS",
    "RETRIES_COUNTER",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SerialBackend",
    "SubprocessWorkerBackend",
    "SweepResult",
    "cache_key",
    "ensure_writable_dir",
    "expand_grid",
    "iter_chunk_rows",
    "make_job",
    "parse_backend_spec",
    "resolve_backend",
    "run_jobs",
    "shard_jobs",
    "write_row_chunks",
]

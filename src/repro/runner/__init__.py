"""Parallel experiment engine with content-addressed result caching.

Public API:

- :func:`expand_grid` / :func:`make_job` — turn (figures × seeds × params)
  into concrete :class:`Job` cells, validated against the
  :class:`~repro.figures.FigureSpec` registry.
- :func:`run_jobs` — execute jobs across a supervised process pool,
  serving repeats from a :class:`ResultCache`, returning a
  :class:`SweepResult` (rows per job + a :class:`RunManifest`); supports
  per-job timeouts, bounded deterministic retries, incremental manifest
  checkpointing, and resuming an interrupted or degraded sweep.
- :class:`RetryPolicy` — timeout/retry/backoff knobs for
  :func:`run_jobs` (see :mod:`repro.runner.supervisor`).
- :class:`ResultCache` / :func:`cache_key` — the on-disk cache.
- :class:`RunManifest` / :class:`JobRecord` — the JSON run manifest
  (schema :data:`MANIFEST_SCHEMA`, with per-job ``status``).

Example::

    from repro.runner import ResultCache, expand_grid, run_jobs

    jobs = expand_grid(["fig4-delay", "fig5"], seeds=[0, 1],
                       grid={"cycles": [100, 400]})
    result = run_jobs(jobs, workers=4, cache=ResultCache("/tmp/cache"),
                      timeout_s=120.0, retries=1,
                      checkpoint="sweep-manifest.json")
    if not result.ok:
        for outcome in result.failures:
            print(outcome.job, outcome.record.error)
    # Later: rerun only what failed.
    result = run_jobs(jobs, cache=ResultCache("/tmp/cache"),
                      resume_from="sweep-manifest.json")
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from .engine import (
    Job,
    JobOutcome,
    SweepResult,
    ensure_writable_dir,
    expand_grid,
    make_job,
    run_jobs,
)
from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_SCHEMA_V2,
    READABLE_SCHEMAS,
    JobRecord,
    RunManifest,
)
from .supervisor import (
    OK_STATUSES,
    RETRIES_COUNTER,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "Job",
    "JobOutcome",
    "JobRecord",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "MANIFEST_SCHEMA_V2",
    "OK_STATUSES",
    "READABLE_SCHEMAS",
    "RETRIES_COUNTER",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SweepResult",
    "cache_key",
    "ensure_writable_dir",
    "expand_grid",
    "make_job",
    "run_jobs",
]

"""Parallel experiment engine with content-addressed result caching.

Public API:

- :func:`expand_grid` / :func:`make_job` — turn (figures × seeds × params)
  into concrete :class:`Job` cells, validated against the
  :class:`~repro.figures.FigureSpec` registry.
- :func:`run_jobs` — execute jobs across a ``multiprocessing`` pool,
  serving repeats from a :class:`ResultCache`, returning a
  :class:`SweepResult` (rows per job + a :class:`RunManifest`).
- :class:`ResultCache` / :func:`cache_key` — the on-disk cache.
- :class:`RunManifest` / :class:`JobRecord` — the JSON run manifest
  (schema :data:`MANIFEST_SCHEMA`).

Example::

    from repro.runner import ResultCache, expand_grid, run_jobs

    jobs = expand_grid(["fig4-delay", "fig5"], seeds=[0, 1],
                       grid={"cycles": [100, 400]})
    result = run_jobs(jobs, workers=4, cache=ResultCache("/tmp/cache"))
    print(result.manifest.to_json())
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from .engine import (
    Job,
    JobOutcome,
    SweepResult,
    ensure_writable_dir,
    expand_grid,
    make_job,
    run_jobs,
)
from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    READABLE_SCHEMAS,
    JobRecord,
    RunManifest,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "Job",
    "JobOutcome",
    "JobRecord",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "READABLE_SCHEMAS",
    "ResultCache",
    "RunManifest",
    "SweepResult",
    "cache_key",
    "ensure_writable_dir",
    "expand_grid",
    "make_job",
    "run_jobs",
]

"""The supervised ``ProcessPoolExecutor`` backend (single host).

This is PR-4's supervision loop, extracted verbatim from
``repro.runner.supervisor`` behind the :class:`ExecutorBackend`
interface: crash isolation through ``guard``, broken-pool detection with
quarantine-based guilt attribution, per-job timeouts via pool teardown
with uncharged bystander resubmission, and deterministic retry backoff.
See :mod:`repro.runner.supervisor` for the attribution rationale.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from ..supervisor import (
    STATUS_FAILED,
    STATUS_TIMEOUT,
    RetryPolicy,
    Task,
    guard,
)
from .base import charge_failure


def _fork_context():
    """Prefer the ``fork`` start method where available.

    Forked workers inherit the parent's figure registry (including specs
    registered at runtime, e.g. by tests or plugins), matching the
    semantics of the PR-1 ``multiprocessing.Pool`` path.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _terminate(executor: ProcessPoolExecutor) -> None:
    """Shut an executor down *now*, killing any still-running workers."""
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)


class LocalPoolBackend:
    """Supervised process-pool execution on the local host.

    **Attribution on worker death:** a dead worker breaks every in-flight
    future, so the guilty job cannot be told apart from bystanders in the
    moment.  All suspects are *quarantined*: rerun one at a time, with
    exclusive use of the pool, and without being charged an attempt.  A
    quarantined job that breaks the pool alone is guilty beyond doubt and
    charged; one that completes is released.  This terminates — every
    pool break either charges exactly one job (bounded by the retry
    budget) or shrinks the set of unquarantined jobs.
    """

    name = "local-pool"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = max(workers or os.cpu_count() or 1, 1)

    def run(
        self,
        tasks: Sequence[Task],
        compute: Callable[[Any], tuple[int, dict]],
        policy: RetryPolicy,
        finish: Callable[[int, dict], None],
        on_event: Callable[..., None] | None = None,
    ) -> None:
        workers = self.workers
        queue: list[Task] = list(tasks)
        sleeping: list[tuple[float, int, Task]] = []  # (due, tiebreak, task)
        inflight: dict[Future, Task] = {}
        quarantined: set[int] = set()  # task indices under solo suspicion
        tick = itertools.count()
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=_fork_context()
        )

        def reschedule(task: Task, delay_s: float) -> None:
            heapq.heappush(
                sleeping, (time.monotonic() + delay_s, next(tick), task)
            )

        def fail(task: Task, result: dict, status: str) -> None:
            """Charge a failed attempt: reschedule or finalize the task."""
            result.setdefault(
                "wall_time_s", time.monotonic() - task.started_at
            )
            charge_failure(
                task, result, status, policy, finish, on_event, reschedule,
                release=lambda t: quarantined.discard(t.index),
            )

        def preempted(task: Task) -> None:
            """Close the attempt trace of an uncharged bystander rerun."""
            if on_event is not None:
                on_event(
                    "attempt_end",
                    task,
                    {
                        "outcome": "preempted",
                        "wall_s": time.monotonic() - task.started_at,
                    },
                )

        def submit(task: Task, charged: bool = True) -> None:
            if charged:
                task.attempts += 1
            task.started_at = time.monotonic()
            if on_event is not None:
                on_event("start", task)
            inflight[executor.submit(guard, compute, task.payload)] = task

        def rebuild_pool() -> None:
            nonlocal executor
            _terminate(executor)
            executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=_fork_context()
            )

        try:
            while queue or sleeping or inflight:
                now = time.monotonic()
                while sleeping and sleeping[0][0] <= now:
                    queue.append(heapq.heappop(sleeping)[2])

                # Submission, under the quarantine discipline: a
                # quarantined task only runs alone, and nothing joins it
                # mid-flight.
                solo = any(t.index in quarantined for t in inflight.values())
                if not solo:
                    ready = [t for t in queue if t.index in quarantined]
                    if ready:
                        if not inflight:
                            task = ready[0]
                            queue.remove(task)
                            submit(task)
                        # else: drain the pool before the suspect runs solo.
                    else:
                        while queue and len(inflight) < workers:
                            submit(queue.pop(0))

                if not inflight:
                    # Every task is in backoff: sleep until the first is
                    # due.
                    time.sleep(max(sleeping[0][0] - time.monotonic(), 0.0))
                    continue

                wait_s: float | None = None
                if policy.timeout_s is not None:
                    deadlines = [
                        t.started_at + policy.timeout_s - now
                        for t in inflight.values()
                    ]
                    wait_s = max(min(deadlines), 0.01)
                if sleeping:
                    until_due = max(sleeping[0][0] - now, 0.01)
                    wait_s = (
                        until_due if wait_s is None else min(wait_s, until_due)
                    )
                done, _ = wait(
                    inflight, timeout=wait_s, return_when=FIRST_COMPLETED
                )

                suspects: list[Task] = []
                for future in done:
                    task = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        index, result = future.result()
                        if "error" in result:
                            fail(task, result, STATUS_FAILED)
                        else:
                            quarantined.discard(task.index)
                            result["attempts"] = task.attempts
                            finish(index, result)
                    elif isinstance(exc, BrokenProcessPool):
                        suspects.append(task)
                    else:
                        fail(
                            task,
                            {"error": f"{type(exc).__name__}: {exc}"},
                            STATUS_FAILED,
                        )

                if suspects:
                    # The pool broke: every remaining in-flight future is
                    # doomed too.  One suspect → guilty, charge it.
                    # Several → quarantine them all, uncharged, for solo
                    # reruns.
                    suspects.extend(inflight.values())
                    inflight.clear()
                    if len(suspects) == 1:
                        quarantined.add(suspects[0].index)
                        fail(
                            suspects[0],
                            {"error": "worker process died before returning "
                                      "a result (killed, crashed, or "
                                      "exited)"},
                            STATUS_FAILED,
                        )
                    else:
                        for task in suspects:
                            preempted(task)
                            task.attempts -= 1
                            quarantined.add(task.index)
                            queue.append(task)
                    rebuild_pool()
                    continue

                if policy.timeout_s is not None:
                    now = time.monotonic()
                    timed_out = [
                        (future, task)
                        for future, task in inflight.items()
                        if now - task.started_at >= policy.timeout_s
                    ]
                    if timed_out:
                        # A hung worker cannot be killed selectively: tear
                        # the pool down, charge the timed-out jobs, and
                        # resubmit the in-flight bystanders without
                        # charging them.
                        for future, task in timed_out:
                            del inflight[future]
                            fail(
                                task,
                                {"error": f"job exceeded timeout of "
                                          f"{policy.timeout_s:g}s"},
                                STATUS_TIMEOUT,
                            )
                        for task in inflight.values():
                            preempted(task)
                            task.attempts -= 1
                            queue.append(task)
                        inflight.clear()
                        rebuild_pool()
        finally:
            _terminate(executor)

"""The executor-backend contract and the ``--backend`` spec grammar.

An :class:`ExecutorBackend` is the thing :func:`repro.runner.run_jobs`
hands its pending tasks to.  The engine owns everything backend-agnostic
— grid expansion, cache lookups, manifest records, checkpointing, status
heartbeats — and the backend owns exactly one job: *execute these tasks
under this retry policy and call ``finish`` exactly once per task*.

The contract every backend (and any future SSH / work-queue backend)
must honor — enforced by ``tests/runner/test_backend_conformance.py``:

- ``finish(index, result)`` is called exactly once per task, from the
  supervising process.  ``result`` is the worker's success dict, or a
  failure dict with ``status`` (``"failed"``/``"timeout"``), ``error``,
  optionally ``traceback``, and ``attempts``.
- a raising figure becomes a ``failed`` result, never an exception out
  of :meth:`ExecutorBackend.run`;
- a failed attempt with retry budget left is retried after the
  deterministic :meth:`RetryPolicy.backoff_s` delay, counted on the
  ``chaos.runner.retries`` obs counter, with ``on_event("retry", task)``
  fired — and the retry reruns the *identical* payload;
- ``on_event("start", task)`` fires before every execution attempt;
- innocent bystanders of a sibling's crash or timeout are rerun without
  being charged an attempt.

Backend specs (CLI ``--backend`` / env ``REPRO_BACKEND``) are
``name[:workers]``::

    serial            # in-process, deterministic, no pool
    local-pool        # supervised ProcessPoolExecutor (default)
    local-pool:8      # ... with an explicit worker count
    subprocess:2      # 2 'repro worker' children over stdio

``subprocess`` is the stepping stone to multi-host execution: the parent
speaks a line-oriented JSON job protocol that works unchanged over an
SSH pipe, and workers share the content-addressed result store.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ... import obs
from ..supervisor import (
    RETRIES_COUNTER,
    RetryPolicy,
    Task,
)

#: Environment variable supplying the default backend spec.
BACKEND_ENV = "REPRO_BACKEND"

#: Spec name resolved by the engine's legacy heuristic (inline for tiny
#: sweeps without timeouts, the local pool otherwise).
BACKEND_AUTO = "auto"


@runtime_checkable
class ExecutorBackend(Protocol):
    """What the engine requires of an executor backend."""

    #: Short name recorded on every job's manifest record.
    name: str

    #: Parallelism the backend offers (recorded in manifest/status).
    workers: int

    def run(
        self,
        tasks: Sequence[Task],
        compute: Callable[[Any], tuple[int, dict]],
        policy: RetryPolicy,
        finish: Callable[[int, dict], None],
        on_event: Callable[..., None] | None = None,
    ) -> None:
        """Execute ``tasks``, calling ``finish`` exactly once per task.

        ``on_event(kind, task, info=None)`` is the engine's lifecycle
        channel.  Kinds every backend emits: ``"start"`` (before each
        attempt), ``"retry"`` (``info={"delay_s": ...}``) and
        ``"attempt_end"`` (``info={"outcome", "wall_s", "error"}``) —
        both via :func:`charge_failure` — plus ``"attempt_end"`` with
        ``outcome="preempted"`` for uncharged bystander reruns.  The
        subprocess backend additionally emits worker-lifecycle events
        (``"worker_spawn"``/``"worker_ready"``/``"worker_dead"``) with
        ``task=None``.
        """
        ...


def charge_failure(
    task: Task,
    result: dict,
    status: str,
    policy: RetryPolicy,
    finish: Callable[..., None],
    on_event: Callable[..., None] | None,
    reschedule: Callable[[Task, float], None],
    *,
    release: Callable[[Task], None] | None = None,
) -> None:
    """Shared retry bookkeeping: reschedule with backoff, or finalize.

    Exactly the discipline :mod:`repro.runner.supervisor` established —
    increment the retry counter, fire ``on_event("retry")``, and hand the
    backend a backend-specific ``reschedule(task, delay_s)`` — extracted
    so Serial/Subprocess backends cannot drift from the local pool.

    Every charged attempt closes with ``on_event("attempt_end", task,
    {...})`` carrying the outcome, so the sweep trace sees failed and
    timed-out attempts exactly like successful ones.  ``release`` is a
    backend hook invoked just before a task is finalized (the local pool
    lifts its quarantine there).
    """
    if on_event is not None:
        on_event(
            "attempt_end",
            task,
            {
                "outcome": status,
                "wall_s": result.get("wall_time_s"),
                "error": result.get("error"),
            },
        )
    if task.attempts <= policy.retries:
        obs.get_registry().counter(
            RETRIES_COUNTER, figure=task.figure
        ).inc()
        delay_s = policy.backoff_s(task.key, task.attempts)
        if on_event is not None:
            on_event("retry", task, {"delay_s": delay_s})
        reschedule(task, delay_s)
        return
    if release is not None:
        release(task)
    result["status"] = status
    result["attempts"] = task.attempts
    finish(task.index, result)


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Split ``"name[:workers]"`` into its parts, validating the shape."""
    text = (spec or "").strip()
    name, _, workers_text = text.partition(":")
    name = name.strip().lower()
    if not name:
        raise ValueError(
            f"empty backend spec {spec!r}; expected NAME[:WORKERS], e.g. "
            f"'serial', 'local-pool', 'subprocess:2'"
        )
    if not workers_text:
        return name, None
    try:
        workers = int(workers_text)
    except ValueError:
        raise ValueError(
            f"bad worker count {workers_text!r} in backend spec {spec!r}; "
            f"expected NAME[:WORKERS], e.g. 'subprocess:2'"
        ) from None
    if workers < 1:
        raise ValueError(
            f"backend spec {spec!r} needs at least 1 worker"
        )
    return name, workers


def resolve_backend(
    spec: "str | ExecutorBackend | None",
    *,
    workers: int | None = None,
    env: "os._Environ[str] | dict[str, str] | None" = None,
) -> "ExecutorBackend | None":
    """Turn a ``--backend`` spec (or :data:`BACKEND_ENV`) into a backend.

    ``spec`` may already be an :class:`ExecutorBackend` instance (passed
    through unchanged), a spec string, or ``None`` — in which case the
    environment is consulted and, failing that, ``None`` is returned so
    the engine applies its legacy auto heuristic.  ``workers`` is the
    engine's ``--jobs`` value; an explicit ``:N`` in the spec wins.
    """
    if spec is not None and not isinstance(spec, str):
        return spec
    if spec is None:
        spec = (env if env is not None else os.environ).get(BACKEND_ENV)
        if not spec:
            return None
    name, spec_workers = parse_backend_spec(spec)
    count = spec_workers or workers
    if name == BACKEND_AUTO:
        return None
    if name == "serial":
        from .serial import SerialBackend

        return SerialBackend()
    if name in ("local-pool", "local_pool", "pool"):
        from .local_pool import LocalPoolBackend

        return LocalPoolBackend(workers=count)
    if name in ("subprocess", "subprocess-worker", "worker"):
        from .subprocess_worker import SubprocessWorkerBackend

        return SubprocessWorkerBackend(workers=count or 2)
    raise ValueError(
        f"unknown backend {name!r}; available: serial, local-pool[:N], "
        f"subprocess[:N] (or 'auto')"
    )

"""Parent side of the ``subprocess`` backend: ``repro worker`` children.

``SubprocessWorkerBackend`` drives a small fleet of ``python -m repro
worker`` child processes over the line-oriented JSON protocol defined in
:mod:`repro.runner.worker`.  It is the stepping stone from the local pool
to multi-host execution: nothing on the wire is a pickle or a file
descriptor, so the same parent loop works unchanged when the pipe runs
through ``ssh host repro worker`` instead of a local fork — workers
already share results through the content-addressed row/cache store
rather than the protocol.

Compared with the local pool, guilt attribution is *simpler* here: each
child runs exactly one job at a time on its own pipe, so a child dying
mid-job convicts that job directly — no quarantine protocol needed, and
innocent bystanders on other children are never disturbed.  Timeouts are
likewise surgical: only the offending child is killed.

Retry bookkeeping (backoff schedule, ``chaos.runner.retries`` counter,
``on_event`` heartbeats) is shared with every other backend through
:func:`~repro.runner.backends.base.charge_failure`.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import queue
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..supervisor import (
    STATUS_FAILED,
    STATUS_TIMEOUT,
    RetryPolicy,
    Task,
)
from .base import charge_failure

#: A child that dies (or violates the protocol) before completing a
#: single job counts as a strike; this many consecutive strikes aborts
#: the sweep (children are clearly unable to start — bad preload, broken
#: interpreter, corrupt worker binary) instead of respawning forever.
_MAX_SPAWN_STRIKES = 5

#: Hard cap on one protocol line from a child.  A healthy ``repro
#: worker`` result is a few KB (rows travel through the content store,
#: not the pipe); a child streaming an unbounded newline-free blob is a
#: protocol violation, and reading it forever would wedge the parent.
_MAX_LINE_BYTES = 64 * 1024 * 1024


def compute_spec(compute: Callable[..., Any]) -> str:
    """The ``module:qualname`` wire form of ``compute``.

    The callable must be importable by name in a fresh process — locals
    and lambdas cannot cross the protocol (by design: no pickles).
    """
    qualname = getattr(compute, "__qualname__", "")
    module = getattr(compute, "__module__", "")
    if not module or not qualname or "<locals>" in qualname:
        raise ValueError(
            f"compute callable {compute!r} is not importable by name; the "
            f"subprocess backend needs a module-level function"
        )
    return f"{module}:{qualname}"


@dataclass
class _Child:
    """One worker child plus its reader thread."""

    id: int
    proc: subprocess.Popen
    reader: threading.Thread = field(repr=False, default=None)  # type: ignore[assignment]
    #: Jobs this child has completed (strike accounting).
    completed: int = 0


class SubprocessWorkerBackend:
    """Execute tasks on ``repro worker`` subprocess children (see module
    docstring).

    ``preload`` entries (``"module:callable"``) are sent to every child
    and invoked before its first job — the hook for registering figure
    specs that exist only at runtime in the parent (fresh processes do
    not inherit them the way forked pool workers do).
    """

    name = "subprocess"

    def __init__(
        self,
        workers: int | None = None,
        *,
        preload: Sequence[str] = (),
        python: str | None = None,
    ) -> None:
        self.workers = max(workers or 2, 1)
        self.preload = list(preload)
        self.python = python or sys.executable

    def _spawn(self, child_id: int, init: dict[str, Any]) -> _Child:
        env = dict(os.environ)
        # `-m repro` must import in the child even when the parent was
        # launched with a cwd-relative PYTHONPATH.
        package_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        proc = subprocess.Popen(
            [self.python, "-m", "repro", "worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        assert proc.stdin is not None
        proc.stdin.write(json.dumps(init, separators=(",", ":")) + "\n")
        proc.stdin.flush()
        return _Child(id=child_id, proc=proc)

    def run(
        self,
        tasks: Sequence[Task],
        compute: Callable[[Any], tuple[int, dict]],
        policy: RetryPolicy,
        finish: Callable[[int, dict], None],
        on_event: Callable[..., None] | None = None,
    ) -> None:
        init = {
            "type": "init",
            "sys_path": [p for p in sys.path if p],
            "preload": self.preload,
            "compute": compute_spec(compute),
        }
        pending: list[Task] = list(tasks)
        sleeping: list[tuple[float, int, Task]] = []  # (due, tiebreak, task)
        tick = itertools.count()
        ids = itertools.count()
        children: dict[int, _Child] = {}
        idle: list[int] = []
        busy: dict[int, Task] = {}
        #: Children we killed on purpose; their EOF must not convict.
        discarded: set[int] = set()
        messages: "queue.Queue[tuple[int, dict | None]]" = queue.Queue()
        strikes = 0

        def emit(kind: str, **info: Any) -> None:
            if on_event is not None:
                on_event(kind, None, info)

        def watch(child: _Child) -> None:
            def violation(why: str) -> None:
                messages.put(
                    (child.id, {"type": "__protocol_error__", "why": why})
                )

            def pump() -> None:
                # A child's output is untrusted input: malformed JSON, a
                # truncated write from a dying process, or an unbounded
                # newline-free blob must convict *this* child, not crash
                # the reader thread (which would silently wedge its slot).
                try:
                    assert child.proc.stdout is not None
                    cap = _MAX_LINE_BYTES
                    while True:
                        line = child.proc.stdout.readline(cap + 1)
                        if not line:
                            break  # EOF: the sentinel below reports it
                        if not line.endswith("\n"):
                            if len(line) > cap:
                                violation(
                                    f"protocol line exceeds "
                                    f"{cap} bytes"
                                )
                            else:
                                violation(
                                    "partial protocol line (child died "
                                    "mid-write)"
                                )
                            break
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            message = json.loads(line)
                        except ValueError:
                            violation(
                                f"malformed JSON on protocol stream: "
                                f"{line[:120]!r}"
                            )
                            break
                        if not isinstance(message, dict):
                            violation(
                                f"non-object protocol message: "
                                f"{line[:120]!r}"
                            )
                            break
                        messages.put((child.id, message))
                finally:
                    messages.put((child.id, None))

            child.reader = threading.Thread(target=pump, daemon=True)
            child.reader.start()

        def reap(child_id: int) -> None:
            child = children.pop(child_id, None)
            if child is None:
                return
            discarded.add(child_id)
            if child_id in idle:
                idle.remove(child_id)
            proc = child.proc
            try:
                if proc.stdin is not None:
                    proc.stdin.close()
            except OSError:
                pass
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=5.0)

        def reschedule(task: Task, delay_s: float) -> None:
            heapq.heappush(
                sleeping, (time.monotonic() + delay_s, next(tick), task)
            )

        def fail(task: Task, result: dict, status: str) -> None:
            result.setdefault(
                "wall_time_s", time.monotonic() - task.started_at
            )
            charge_failure(
                task, result, status, policy, finish, on_event, reschedule
            )

        def dispatch(child_id: int, task: Task) -> bool:
            """Send ``task`` to a child; False if its pipe turned out dead."""
            task.attempts += 1
            task.started_at = time.monotonic()
            if on_event is not None:
                on_event("start", task, {"worker": child_id})
            child = children[child_id]
            try:
                assert child.proc.stdin is not None
                child.proc.stdin.write(
                    json.dumps(
                        {"type": "job", "payload": task.payload},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                child.proc.stdin.flush()
            except (OSError, ValueError):
                # The child died while idle — not this task's doing.
                # Uncharge it, discard the corpse, and let the loop
                # respawn; the EOF message is already in flight.
                if on_event is not None:
                    on_event(
                        "attempt_end", task, {"outcome": "preempted"}
                    )
                task.attempts -= 1
                pending.insert(0, task)
                emit("worker_dead", worker=child_id, reason="dead pipe")
                reap(child_id)
                return False
            busy[child_id] = task
            return True

        try:
            while pending or sleeping or busy:
                now = time.monotonic()
                while sleeping and sleeping[0][0] <= now:
                    pending.append(heapq.heappop(sleeping)[2])

                # Keep min(workers, runnable) children alive.  A child is
                # not dispatchable until its "ready" arrives: interpreter
                # start-up and preload imports must never count against a
                # job's timeout budget.
                want = min(self.workers, len(pending) + len(busy))
                while len(children) < want:
                    child = self._spawn(next(ids), init)
                    children[child.id] = child
                    emit("worker_spawn", worker=child.id, pid=child.proc.pid)
                    watch(child)

                while pending and idle:
                    dispatch(idle.pop(0), pending.pop(0))

                if not busy and not children:
                    if pending:
                        continue  # a pipe died mid-dispatch; respawn
                    # Everything is in backoff: sleep until the first is
                    # due.
                    time.sleep(max(sleeping[0][0] - time.monotonic(), 0.0))
                    continue

                wait_s: float | None = None
                if policy.timeout_s is not None and busy:
                    deadlines = [
                        t.started_at + policy.timeout_s - now
                        for t in busy.values()
                    ]
                    wait_s = max(min(deadlines), 0.01)
                if sleeping:
                    until_due = max(sleeping[0][0] - now, 0.01)
                    wait_s = (
                        until_due if wait_s is None else min(wait_s, until_due)
                    )
                try:
                    child_id, message = messages.get(timeout=wait_s)
                except queue.Empty:
                    child_id, message = -1, {}

                def convict(child_id: int, why: str) -> None:
                    """A child broke the protocol: fail its job (if any),
                    count a strike against never-productive children, and
                    discard the child — siblings are never disturbed."""
                    nonlocal strikes
                    task = busy.pop(child_id, None)
                    if task is not None:
                        fail(
                            task,
                            {"error": f"worker protocol violation: {why}"},
                            STATUS_FAILED,
                        )
                    child = children.get(child_id)
                    if child is None or child.completed == 0:
                        strikes += 1
                        if strikes >= _MAX_SPAWN_STRIKES:
                            raise RuntimeError(
                                "subprocess workers keep dying or breaking "
                                "protocol before completing a job; check "
                                "stderr for import/preload errors"
                            )
                    emit("worker_dead", worker=child_id, reason=why)
                    reap(child_id)

                if child_id >= 0 and child_id not in discarded:
                    kind = None if message is None else message.get("type")
                    if message is None:
                        # EOF: the child process died.
                        task = busy.pop(child_id, None)
                        if task is not None:
                            # One job per child: died-while-busy convicts
                            # the job directly, no quarantine needed.
                            fail(
                                task,
                                {"error": "worker process died before "
                                          "returning a result (killed, "
                                          "crashed, or exited)"},
                                STATUS_FAILED,
                            )
                        child = children.get(child_id)
                        if child is None or child.completed == 0:
                            strikes += 1
                            if strikes >= _MAX_SPAWN_STRIKES:
                                raise RuntimeError(
                                    "subprocess workers keep dying before "
                                    "completing a job; check stderr for "
                                    "import/preload errors"
                                )
                        emit(
                            "worker_dead", worker=child_id,
                            reason="process exit",
                        )
                        reap(child_id)
                    elif kind == "__protocol_error__":
                        convict(child_id, message.get("why", "unreadable"))
                    elif kind == "result":
                        task = busy.pop(child_id, None)
                        result = message.get("result")
                        if task is None or not isinstance(result, dict):
                            if task is not None:
                                busy[child_id] = task  # convict() refails
                            convict(
                                child_id,
                                "result for idle child"
                                if task is None
                                else "non-object result payload",
                            )
                        else:
                            child = children[child_id]
                            child.completed += 1
                            strikes = 0
                            idle.append(child_id)
                            if "error" in result:
                                fail(task, result, STATUS_FAILED)
                            else:
                                result["attempts"] = task.attempts
                                finish(task.index, result)
                    elif kind == "ready":
                        emit("worker_ready", worker=child_id)
                        if child_id in children and child_id not in idle:
                            idle.append(child_id)
                    else:
                        # Unknown message types are protocol violations
                        # too: a parent silently ignoring them would mask
                        # a version-skewed or corrupted worker forever.
                        convict(
                            child_id, f"unknown message type {kind!r}"
                        )

                if policy.timeout_s is not None:
                    now = time.monotonic()
                    for child_id in [
                        cid for cid, t in busy.items()
                        if now - t.started_at >= policy.timeout_s
                    ]:
                        # Surgical, unlike the pool: only the offender's
                        # child is killed; siblings keep running.
                        task = busy.pop(child_id)
                        emit(
                            "worker_dead", worker=child_id,
                            reason="timeout kill",
                        )
                        reap(child_id)
                        fail(
                            task,
                            {"error": f"job exceeded timeout of "
                                      f"{policy.timeout_s:g}s"},
                            STATUS_TIMEOUT,
                        )
        finally:
            for child_id, child in list(children.items()):
                try:
                    if child.proc.stdin is not None:
                        child.proc.stdin.write('{"type":"shutdown"}\n')
                        child.proc.stdin.flush()
                except (OSError, ValueError):
                    pass
                reap(child_id)

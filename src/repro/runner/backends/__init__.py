"""Executor backends for the sweep engine.

The engine (:func:`repro.runner.run_jobs`) is backend-agnostic: it
expands grids, serves cache hits, writes manifests/checkpoints/status —
and hands the pending tasks to an :class:`ExecutorBackend` to actually
run.  Three backends ship today:

- :class:`SerialBackend` — in-process, deterministic, pool-free;
- :class:`LocalPoolBackend` — the supervised ``ProcessPoolExecutor``
  with quarantine-based guilt attribution (the former default path);
- :class:`SubprocessWorkerBackend` — ``repro worker`` children over a
  stdio JSON protocol, the stepping stone to multi-host sweeps.

All three honor one contract (retries, timeouts, heartbeat events,
uncharged bystanders), enforced by
``tests/runner/test_backend_conformance.py``.
"""

from .base import (
    BACKEND_AUTO,
    BACKEND_ENV,
    ExecutorBackend,
    charge_failure,
    parse_backend_spec,
    resolve_backend,
)
from .local_pool import LocalPoolBackend
from .serial import SerialBackend
from .subprocess_worker import SubprocessWorkerBackend

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_ENV",
    "ExecutorBackend",
    "LocalPoolBackend",
    "SerialBackend",
    "SubprocessWorkerBackend",
    "charge_failure",
    "parse_backend_spec",
    "resolve_backend",
]

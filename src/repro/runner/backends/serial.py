"""In-process sequential backend: deterministic, pool-free, debuggable.

``SerialBackend`` executes every task in the supervising process, one at
a time, in submission order — no fork, no pickling, no scheduler
nondeterminism.  It is what ``--jobs 1`` sweeps and the test suite run
on, and the reference implementation the backend-conformance suite
measures the others against.

Timeouts are enforced *post hoc*: a frame cannot kill itself, so a task
that exceeds ``RetryPolicy.timeout_s`` runs to completion, has its
result discarded, and is recorded (and retried/charged) exactly as a
pool timeout would be — same ``"timeout"`` status, same backoff, same
heartbeat events.  Preemptive enforcement needs process isolation; pick
``local-pool`` or ``subprocess`` for hung-job protection.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from ..supervisor import (
    STATUS_FAILED,
    STATUS_TIMEOUT,
    RetryPolicy,
    Task,
    guard,
)
from .base import charge_failure


class SerialBackend:
    """Sequential in-process execution (see module docstring)."""

    name = "serial"
    workers = 1

    def run(
        self,
        tasks: Sequence[Task],
        compute: Callable[[Any], tuple[int, dict]],
        policy: RetryPolicy,
        finish: Callable[[int, dict], None],
        on_event: Callable[..., None] | None = None,
    ) -> None:
        for task in tasks:
            self._run_one(task, compute, policy, finish, on_event)

    def _run_one(
        self,
        task: Task,
        compute: Callable[[Any], tuple[int, dict]],
        policy: RetryPolicy,
        finish: Callable[[int, dict], None],
        on_event: Callable[..., None] | None,
    ) -> None:
        while True:
            task.attempts += 1
            if on_event is not None:
                on_event("start", task)
            started = time.monotonic()
            index, result = guard(compute, task.payload)
            elapsed = time.monotonic() - started
            timed_out = (
                policy.timeout_s is not None and elapsed >= policy.timeout_s
            )
            if "error" not in result and not timed_out:
                result["attempts"] = task.attempts
                finish(index, result)
                return
            if timed_out:
                # The attempt's output (success or error) is discarded:
                # past the deadline it would have been killed on a
                # process-isolating backend, and conformance demands the
                # same observable record here.
                result = {
                    "error": (
                        f"job exceeded timeout of {policy.timeout_s:g}s "
                        f"(completed in {elapsed:.2f}s; the serial backend "
                        f"cannot preempt)"
                    ),
                    "wall_time_s": elapsed,
                }
                status = STATUS_TIMEOUT
            else:
                status = STATUS_FAILED
            retry = {"requeued": False}

            def reschedule(task: Task, delay_s: float) -> None:
                retry["requeued"] = True
                time.sleep(delay_s)

            charge_failure(
                task, result, status, policy, finish, on_event, reschedule
            )
            if not retry["requeued"]:
                return

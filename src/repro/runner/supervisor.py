"""Supervised job execution: crash isolation, timeouts, bounded retries.

The PR-1 engine dispatched jobs over a bare ``multiprocessing.Pool``: one
raising figure, one hung worker, or one OOM-killed process aborted the
whole sweep with no manifest and no way to resume.  This module is the
supervision layer underneath :func:`repro.runner.run_jobs` that turns
those events into *data* instead of aborts:

- a worker exception becomes a structured failure result (error string +
  traceback) and the sweep continues;
- a worker that dies outright (``os._exit``, OOM kill, segfault) is
  detected through the broken-pool machinery of
  :class:`concurrent.futures.ProcessPoolExecutor` and the pool is
  rebuilt.  A dead worker breaks *every* in-flight future, so when more
  than one job was in flight the suspects are **quarantined**: rerun one
  at a time (uncharged) until the guilty job breaks the pool alone and
  can be charged precisely — innocent bystanders never lose an attempt
  to a sibling's crash;
- a job that exceeds ``RetryPolicy.timeout_s`` has its worker terminated
  and is recorded with status ``"timeout"``; in-flight bystanders are
  resubmitted without being charged an attempt;
- every failed attempt with retry budget left is rescheduled after a
  *deterministic* exponential backoff (seeded jitter, no wall-clock
  randomness) and counted on the ``chaos.runner.retries`` obs counter.

Retries rerun the identical payload — same figure, same seed, same
params — so backoff can never perturb simulation results; only wall
time and the ``attempts`` field change.

As of PR-8 the execution loops live behind the
:class:`~repro.runner.backends.ExecutorBackend` interface
(:mod:`repro.runner.backends`): the supervised pool loop moved verbatim
to :class:`~repro.runner.backends.LocalPoolBackend`, sequential
execution to :class:`~repro.runner.backends.SerialBackend`.  This module
keeps the vocabulary every backend shares — statuses,
:class:`RetryPolicy`, :class:`Task`, :func:`guard` — plus
:func:`run_inline`/:func:`run_supervised` as thin compatibility
delegates.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

#: Obs counter incremented (with a ``figure`` label) on every retry.
RETRIES_COUNTER = "chaos.runner.retries"

#: Job statuses recorded in the manifest (see ``JobRecord.status``).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"

#: Statuses that carry usable rows; anything else is a failure.
OK_STATUSES = (STATUS_OK, STATUS_CACHED)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, retry budget, and deterministic backoff for one sweep.

    ``retries`` is the number of *additional* attempts after the first
    (``retries=2`` → at most 3 executions).  Backoff after attempt *n*
    is ``backoff_base_s * backoff_factor**(n-1)``, scaled by a jitter in
    ``[0.5, 1.5)`` derived from ``sha256(seed, job key, attempt)`` — the
    same sweep retries on the same schedule every run, with no
    wall-clock randomness to make campaign fingerprints flaky.
    """

    retries: int = 0
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    seed: int = 0

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before re-running ``key`` after failed attempt ``attempt``."""
        base = self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0)
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
        return min(base * jitter, self.backoff_max_s)


@dataclass(eq=False)
class Task:
    """One supervised unit of work: a pickled payload plus retry state."""

    index: int
    payload: Any
    key: str
    figure: str
    #: Attempts charged against the retry budget (uncharged reruns after
    #: a sibling broke the pool are not counted).
    attempts: int = 0
    started_at: float = field(default=0.0, repr=False)


def guard(compute: Callable[[Any], tuple[int, dict]], payload: Any):
    """Run ``compute`` in a worker, converting exceptions to failure dicts.

    Keeping the try/except *inside* the worker means a future that raises
    can only mean the worker process itself died — which is exactly the
    classification the supervisor needs.  ``KeyboardInterrupt`` is
    re-raised so Ctrl-C still tears the pool down promptly.
    """
    start = time.perf_counter()
    try:
        return compute(payload)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        return payload[0], {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "wall_time_s": time.perf_counter() - start,
        }


def run_inline(
    tasks: Sequence[Task],
    compute: Callable[[Any], tuple[int, dict]],
    policy: RetryPolicy,
    finish: Callable[[int, dict], None],
    on_event: Callable[[str, Task], None] | None = None,
) -> None:
    """Sequential in-process execution (compatibility delegate).

    Now a thin wrapper over
    :class:`~repro.runner.backends.SerialBackend`; used for
    single-worker / single-job sweeps where pool overhead is not worth
    paying.  Exceptions are isolated and retried exactly like the pool
    path.  Timeouts are enforced *post hoc* (the attempt runs to
    completion, then is recorded as a timeout) — preemptive enforcement
    needs process isolation, i.e. :func:`run_supervised`.

    ``on_event`` (shared with :func:`run_supervised`) receives
    ``("start", task)`` before every execution and ``("retry", task)``
    when a failed attempt is rescheduled — the hook live sweep telemetry
    (:class:`repro.obs.status.SweepStatus`) hangs off.  It runs in the
    supervising process only and never touches job payloads or results.
    """
    from .backends.serial import SerialBackend

    SerialBackend().run(tasks, compute, policy, finish, on_event=on_event)


def run_supervised(
    tasks: Sequence[Task],
    compute: Callable[[Any], tuple[int, dict]],
    workers: int,
    policy: RetryPolicy,
    finish: Callable[[int, dict], None],
    on_event: Callable[[str, Task], None] | None = None,
) -> None:
    """Run ``tasks`` over a supervised pool (compatibility delegate).

    Now a thin wrapper over
    :class:`~repro.runner.backends.LocalPoolBackend`, which carries the
    supervision loop — broken-pool detection, quarantine-based guilt
    attribution, timeout teardown with uncharged bystander resubmission —
    unchanged.  Calls ``finish(index, result)`` exactly once per task, in
    completion order; ``result`` is either the worker's success dict or a
    failure dict carrying ``status`` (``"failed"``/``"timeout"``),
    ``error``, ``traceback`` (when available), ``wall_time_s``, and
    ``attempts``.
    """
    from .backends.local_pool import LocalPoolBackend

    LocalPoolBackend(workers=workers).run(
        tasks, compute, policy, finish, on_event=on_event
    )

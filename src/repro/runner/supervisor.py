"""Supervised job execution: crash isolation, timeouts, bounded retries.

The PR-1 engine dispatched jobs over a bare ``multiprocessing.Pool``: one
raising figure, one hung worker, or one OOM-killed process aborted the
whole sweep with no manifest and no way to resume.  This module is the
supervision layer underneath :func:`repro.runner.run_jobs` that turns
those events into *data* instead of aborts:

- a worker exception becomes a structured failure result (error string +
  traceback) and the sweep continues;
- a worker that dies outright (``os._exit``, OOM kill, segfault) is
  detected through the broken-pool machinery of
  :class:`concurrent.futures.ProcessPoolExecutor` and the pool is
  rebuilt.  A dead worker breaks *every* in-flight future, so when more
  than one job was in flight the suspects are **quarantined**: rerun one
  at a time (uncharged) until the guilty job breaks the pool alone and
  can be charged precisely — innocent bystanders never lose an attempt
  to a sibling's crash;
- a job that exceeds ``RetryPolicy.timeout_s`` has its worker terminated
  and is recorded with status ``"timeout"``; in-flight bystanders are
  resubmitted without being charged an attempt;
- every failed attempt with retry budget left is rescheduled after a
  *deterministic* exponential backoff (seeded jitter, no wall-clock
  randomness) and counted on the ``chaos.runner.retries`` obs counter.

Retries rerun the identical payload — same figure, same seed, same
params — so backoff can never perturb simulation results; only wall
time and the ``attempts`` field change.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .. import obs

#: Obs counter incremented (with a ``figure`` label) on every retry.
RETRIES_COUNTER = "chaos.runner.retries"

#: Job statuses recorded in the manifest (see ``JobRecord.status``).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"

#: Statuses that carry usable rows; anything else is a failure.
OK_STATUSES = (STATUS_OK, STATUS_CACHED)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, retry budget, and deterministic backoff for one sweep.

    ``retries`` is the number of *additional* attempts after the first
    (``retries=2`` → at most 3 executions).  Backoff after attempt *n*
    is ``backoff_base_s * backoff_factor**(n-1)``, scaled by a jitter in
    ``[0.5, 1.5)`` derived from ``sha256(seed, job key, attempt)`` — the
    same sweep retries on the same schedule every run, with no
    wall-clock randomness to make campaign fingerprints flaky.
    """

    retries: int = 0
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    seed: int = 0

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before re-running ``key`` after failed attempt ``attempt``."""
        base = self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0)
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
        return min(base * jitter, self.backoff_max_s)


@dataclass(eq=False)
class Task:
    """One supervised unit of work: a pickled payload plus retry state."""

    index: int
    payload: Any
    key: str
    figure: str
    #: Attempts charged against the retry budget (uncharged reruns after
    #: a sibling broke the pool are not counted).
    attempts: int = 0
    started_at: float = field(default=0.0, repr=False)


def guard(compute: Callable[[Any], tuple[int, dict]], payload: Any):
    """Run ``compute`` in a worker, converting exceptions to failure dicts.

    Keeping the try/except *inside* the worker means a future that raises
    can only mean the worker process itself died — which is exactly the
    classification the supervisor needs.  ``KeyboardInterrupt`` is
    re-raised so Ctrl-C still tears the pool down promptly.
    """
    start = time.perf_counter()
    try:
        return compute(payload)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        return payload[0], {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "wall_time_s": time.perf_counter() - start,
        }


def _fork_context():
    """Prefer the ``fork`` start method where available.

    Forked workers inherit the parent's figure registry (including specs
    registered at runtime, e.g. by tests or plugins), matching the
    semantics of the PR-1 ``multiprocessing.Pool`` path.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _terminate(executor: ProcessPoolExecutor) -> None:
    """Shut an executor down *now*, killing any still-running workers."""
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)


def run_inline(
    tasks: Sequence[Task],
    compute: Callable[[Any], tuple[int, dict]],
    policy: RetryPolicy,
    finish: Callable[[int, dict], None],
    on_event: Callable[[str, Task], None] | None = None,
) -> None:
    """Sequential supervised execution (no pool, no timeout enforcement).

    Used for single-worker / single-job sweeps where pool overhead is not
    worth paying.  Exceptions are isolated and retried exactly like the
    pool path; timeouts require a pool (you cannot kill your own frame)
    and are enforced by :func:`run_supervised` instead.

    ``on_event`` (shared with :func:`run_supervised`) receives
    ``("start", task)`` before every execution and ``("retry", task)``
    when a failed attempt is rescheduled — the hook live sweep telemetry
    (:class:`repro.obs.status.SweepStatus`) hangs off.  It runs in the
    supervising process only and never touches job payloads or results.
    """
    for task in tasks:
        while True:
            task.attempts += 1
            if on_event is not None:
                on_event("start", task)
            index, result = guard(compute, task.payload)
            if "error" not in result:
                result["attempts"] = task.attempts
                finish(index, result)
                break
            if task.attempts <= policy.retries:
                obs.get_registry().counter(
                    RETRIES_COUNTER, figure=task.figure
                ).inc()
                if on_event is not None:
                    on_event("retry", task)
                time.sleep(policy.backoff_s(task.key, task.attempts))
                continue
            result["status"] = STATUS_FAILED
            result["attempts"] = task.attempts
            finish(index, result)
            break


def run_supervised(
    tasks: Sequence[Task],
    compute: Callable[[Any], tuple[int, dict]],
    workers: int,
    policy: RetryPolicy,
    finish: Callable[[int, dict], None],
    on_event: Callable[[str, Task], None] | None = None,
) -> None:
    """Run ``tasks`` over a supervised :class:`ProcessPoolExecutor`.

    Calls ``finish(index, result)`` exactly once per task, in completion
    order.  ``result`` is either the worker's success dict or a failure
    dict carrying ``status`` (``"failed"``/``"timeout"``), ``error``,
    ``traceback`` (when available), ``wall_time_s``, and ``attempts``.

    **Attribution on worker death:** a dead worker breaks every in-flight
    future, so the guilty job cannot be told apart from bystanders in the
    moment.  All suspects are *quarantined*: rerun one at a time, with
    exclusive use of the pool, and without being charged an attempt.  A
    quarantined job that breaks the pool alone is guilty beyond doubt and
    charged; one that completes is released.  This terminates — every
    pool break either charges exactly one job (bounded by the retry
    budget) or shrinks the set of unquarantined jobs.
    """
    queue: list[Task] = list(tasks)
    sleeping: list[tuple[float, int, Task]] = []  # (due, tiebreak, task)
    inflight: dict[Future, Task] = {}
    quarantined: set[int] = set()  # task indices under solo suspicion
    tick = itertools.count()
    executor = ProcessPoolExecutor(
        max_workers=workers, mp_context=_fork_context()
    )

    def fail(task: Task, result: dict, status: str) -> None:
        """Charge a failed attempt: reschedule or finalize the task."""
        if task.attempts <= policy.retries:
            obs.get_registry().counter(
                RETRIES_COUNTER, figure=task.figure
            ).inc()
            if on_event is not None:
                on_event("retry", task)
            due = time.monotonic() + policy.backoff_s(task.key, task.attempts)
            heapq.heappush(sleeping, (due, next(tick), task))
            return
        quarantined.discard(task.index)
        result.setdefault("wall_time_s", time.monotonic() - task.started_at)
        result["status"] = status
        result["attempts"] = task.attempts
        finish(task.index, result)

    def submit(task: Task, charged: bool = True) -> None:
        if charged:
            task.attempts += 1
        task.started_at = time.monotonic()
        if on_event is not None:
            on_event("start", task)
        inflight[executor.submit(guard, compute, task.payload)] = task

    def rebuild_pool() -> None:
        nonlocal executor
        _terminate(executor)
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=_fork_context()
        )

    try:
        while queue or sleeping or inflight:
            now = time.monotonic()
            while sleeping and sleeping[0][0] <= now:
                queue.append(heapq.heappop(sleeping)[2])

            # Submission, under the quarantine discipline: a quarantined
            # task only runs alone, and nothing joins it mid-flight.
            solo = any(t.index in quarantined for t in inflight.values())
            if not solo:
                ready = [t for t in queue if t.index in quarantined]
                if ready:
                    if not inflight:
                        task = ready[0]
                        queue.remove(task)
                        submit(task)
                    # else: drain the pool before the suspect runs solo.
                else:
                    while queue and len(inflight) < workers:
                        submit(queue.pop(0))

            if not inflight:
                # Every task is in backoff: sleep until the first is due.
                time.sleep(max(sleeping[0][0] - time.monotonic(), 0.0))
                continue

            wait_s: float | None = None
            if policy.timeout_s is not None:
                deadlines = [
                    t.started_at + policy.timeout_s - now
                    for t in inflight.values()
                ]
                wait_s = max(min(deadlines), 0.01)
            if sleeping:
                until_due = max(sleeping[0][0] - now, 0.01)
                wait_s = until_due if wait_s is None else min(wait_s, until_due)
            done, _ = wait(inflight, timeout=wait_s, return_when=FIRST_COMPLETED)

            suspects: list[Task] = []
            for future in done:
                task = inflight.pop(future)
                exc = future.exception()
                if exc is None:
                    index, result = future.result()
                    if "error" in result:
                        fail(task, result, STATUS_FAILED)
                    else:
                        quarantined.discard(task.index)
                        result["attempts"] = task.attempts
                        finish(index, result)
                elif isinstance(exc, BrokenProcessPool):
                    suspects.append(task)
                else:
                    fail(
                        task,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        STATUS_FAILED,
                    )

            if suspects:
                # The pool broke: every remaining in-flight future is
                # doomed too.  One suspect → guilty, charge it.  Several →
                # quarantine them all, uncharged, for solo reruns.
                suspects.extend(inflight.values())
                inflight.clear()
                if len(suspects) == 1:
                    quarantined.add(suspects[0].index)
                    fail(
                        suspects[0],
                        {"error": "worker process died before returning a "
                                  "result (killed, crashed, or exited)"},
                        STATUS_FAILED,
                    )
                else:
                    for task in suspects:
                        task.attempts -= 1
                        quarantined.add(task.index)
                        queue.append(task)
                rebuild_pool()
                continue

            if policy.timeout_s is not None:
                now = time.monotonic()
                timed_out = [
                    (future, task)
                    for future, task in inflight.items()
                    if now - task.started_at >= policy.timeout_s
                ]
                if timed_out:
                    # A hung worker cannot be killed selectively: tear the
                    # pool down, charge the timed-out jobs, and resubmit
                    # the in-flight bystanders without charging them.
                    for future, task in timed_out:
                        del inflight[future]
                        fail(
                            task,
                            {"error": f"job exceeded timeout of "
                                      f"{policy.timeout_s:g}s"},
                            STATUS_TIMEOUT,
                        )
                    for task in inflight.values():
                        task.attempts -= 1
                        queue.append(task)
                    inflight.clear()
                    rebuild_pool()
    finally:
        _terminate(executor)

"""Content-addressed on-disk cache for figure results.

A cache entry is keyed on the SHA-256 of the canonical JSON encoding of
``{figure, params, seed, version}`` — so a change to the figure's
parameters, the seed, or the package version produces a different key and
a recomputation, while re-running an identical sweep hits the cache and
skips the simulation entirely.

Layout (two-level fan-out to keep directories small)::

    <cache-dir>/
        ab/
            ab3f…9c.json     # {"key": …, "figure": …, "seed": …,
                             #  "params": …, "version": …, "rows": […]}

Entries are written atomically (temp file + ``os.replace``) so a crashed
or parallel writer never leaves a truncated entry behind; readers treat
undecodable entries as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from .. import __version__
from ..figures import Rows

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = Path(".repro-cache")


def cache_key(
    figure: str,
    seed: int,
    params: Mapping[str, Any],
    version: str = __version__,
) -> str:
    """The content address of one (figure, seed, params, version) cell."""
    payload = json.dumps(
        {
            "figure": figure,
            "params": {k: _canonical(v) for k, v in sorted(params.items())},
            "seed": seed,
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    """JSON-stable form for param values (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


class ResultCache:
    """Stores figure rows under their content address."""

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Rows | None:
        """The cached rows for ``key``, or ``None`` on a miss."""
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("key") != key:
            return None
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            # A decodable but malformed entry (hand-edited, or a schema
            # from some future version) is a miss, never a crash.
            return None
        return Rows(rows)

    def put(
        self,
        key: str,
        rows: Rows,
        *,
        figure: str,
        seed: int,
        params: Mapping[str, Any],
    ) -> Path:
        """Atomically write ``rows`` under ``key``; returns the entry path."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": key,
                "figure": figure,
                "seed": seed,
                "params": {k: _canonical(v) for k, v in sorted(params.items())},
                "version": __version__,
                "rows": list(rows),
            }
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

"""Content-addressed on-disk cache for figure results.

A cache entry is keyed on the SHA-256 of the canonical JSON encoding of
``{figure, params, seed, version}`` — so a change to the figure's
parameters, the seed, or the package version produces a different key and
a recomputation, while re-running an identical sweep hits the cache and
skips the simulation entirely.

Layout (two-level fan-out to keep directories small)::

    <cache-dir>/
        ab/
            ab3f…9c.json     # {"key": …, "figure": …, "seed": …,
                             #  "params": …, "version": …, "rows": […]}

Entries are written atomically (temp file + ``os.replace``) so a crashed
or parallel writer never leaves a truncated entry behind; readers treat
undecodable entries as misses.

**Streamed entries** (PR-8): a sweep running with row streaming does not
inline ``rows`` in the entry; instead the entry carries ``row_chunks``
(paths of the chunked JSONL files the worker wrote under
:meth:`ResultCache.rows_dir`, see :mod:`repro.runner.rowstream`) plus a
``rows_count``.  :meth:`ResultCache.get` then returns a
:class:`~repro.runner.rowstream.LazyRows` over those chunks — a hit never
materializes the rows in the supervising process.  A streamed entry whose
chunk files have gone missing is a miss, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from .. import __version__
from ..figures import Rows
from .rowstream import LazyRows

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = Path(".repro-cache")


def cache_key(
    figure: str,
    seed: int,
    params: Mapping[str, Any],
    version: str = __version__,
) -> str:
    """The content address of one (figure, seed, params, version) cell."""
    payload = json.dumps(
        {
            "figure": figure,
            "params": {k: _canonical(v) for k, v in sorted(params.items())},
            "seed": seed,
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    """JSON-stable form for param values (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


class ResultCache:
    """Stores figure rows under their content address."""

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def rows_dir(self) -> Path:
        """Root of the streamed row-chunk store co-located with the cache.

        Workers write chunked JSONL row files here (see
        :mod:`repro.runner.rowstream`); streamed cache entries reference
        them instead of inlining rows.
        """
        return self.root / "rows"

    def get(self, key: str) -> "Rows | LazyRows | None":
        """The cached rows for ``key``, or ``None`` on a miss.

        In-memory entries come back as eager :class:`Rows`; streamed
        entries as a :class:`LazyRows` over their chunk files.
        """
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("key") != key:
            return None
        chunks = payload.get("row_chunks")
        if chunks is not None:
            count = payload.get("rows_count")
            if (
                not isinstance(chunks, list)
                or not all(isinstance(c, str) for c in chunks)
                or not isinstance(count, int)
            ):
                return None
            paths = [Path(c) for c in chunks]
            if not all(p.is_file() for p in paths):
                # The entry survived but its chunk files did not (pruned,
                # partial rsync): recompute rather than crash mid-read.
                return None
            return LazyRows(paths, count)
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            # A decodable but malformed entry (hand-edited, or a schema
            # from some future version) is a miss, never a crash.
            return None
        return Rows(rows)

    def put(
        self,
        key: str,
        rows: Rows,
        *,
        figure: str,
        seed: int,
        params: Mapping[str, Any],
    ) -> Path:
        """Atomically write ``rows`` under ``key``; returns the entry path."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": key,
                "figure": figure,
                "seed": seed,
                "params": {k: _canonical(v) for k, v in sorted(params.items())},
                "version": __version__,
                "rows": list(rows),
            }
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def put_streamed(
        self,
        key: str,
        chunks: Iterable[Path | str],
        count: int,
        *,
        figure: str,
        seed: int,
        params: Mapping[str, Any],
    ) -> Path:
        """Atomically record a streamed entry referencing row-chunk files.

        The chunks themselves were already written (atomically) by the
        worker; this writes only the small entry document, so a sweep's
        cache writes stay O(1) in row count.
        """
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": key,
                "figure": figure,
                "seed": seed,
                "params": {k: _canonical(v) for k, v in sorted(params.items())},
                "version": __version__,
                "row_chunks": [str(chunk) for chunk in chunks],
                "rows_count": int(count),
            }
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

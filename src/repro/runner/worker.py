"""Child side of the subprocess backend's stdio job protocol.

``repro worker`` turns a plain child process (today spawned locally by
:class:`~repro.runner.backends.subprocess_worker.SubprocessWorkerBackend`,
tomorrow over an SSH pipe on another host) into a job executor speaking a
line-oriented JSON protocol on stdin/stdout:

parent → child::

    {"type": "init", "sys_path": [...], "preload": ["mod:callable", ...],
     "compute": "module:qualname"}
    {"type": "job", "payload": [...]}          # any number, sequentially
    {"type": "shutdown"}

child → parent::

    {"type": "ready"}                           # init applied
    {"type": "result", "index": N, "result": {...}}  # one per job

The ``compute`` callable is resolved by qualified name so the protocol
stays data-only (no pickles on the wire — a hard requirement for the SSH
future, and what keeps the child inspectable with ``jq``).  When the
sweep runs with ``--sweeptrace``, the payload's trailing element is the
``{"trace": ..., "span": ...}`` span context minted by the engine
(:mod:`repro.obs.sweeptrace`); ``_as_payload`` passes the dict through
untouched and the engine-side ``_compute`` stamps it onto the child's
``runner.job`` Chrome span, which is how child-side spans correlate with
the parent's ``sweep.events.jsonl`` across the process boundary.  ``preload``
entries are imported and called before the first job; they exist because
a fresh child does *not* inherit figure specs registered at runtime in
the parent the way forked pool workers do — a preload hook re-registers
them (see ``tests/runner/faulty.py::install``).

Exceptions inside a job are converted to failure dicts by
:func:`~repro.runner.supervisor.guard` *inside the child*, exactly like
pool workers, so a protocol-level child death can only mean the process
itself died — the classification the parent's supervisor needs.

The protocol owns the real stdout: on startup the worker dups fd 1 for
itself and points ``sys.stdout`` at stderr, so a ``print()`` inside a
figure cannot corrupt the message stream.
"""

from __future__ import annotations

import importlib
import json
import os
import sys
from typing import Any, Callable, TextIO

from .supervisor import guard


def resolve_callable(spec: str) -> Callable[..., Any]:
    """Import ``"module:qualname"`` and return the named callable."""
    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise ValueError(
            f"bad callable spec {spec!r}; expected 'module:qualname'"
        )
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"{spec!r} resolved to non-callable {target!r}")
    return target


def _as_payload(raw: Any) -> Any:
    """Rebuild the engine payload tuple from its JSON (list) form.

    JSON has no tuples: the params element arrives as a list of
    ``[name, value]`` pairs.  Figure param coercion
    (:meth:`repro.figures.ParamSpec.coerce`) restores tuple-typed values,
    so pair order and container types round-trip losslessly.
    """
    if isinstance(raw, list):
        return tuple(
            tuple(tuple(pair) for pair in item)
            if isinstance(item, list)
            and all(isinstance(pair, list) for pair in item)
            else item
            for item in raw
        )
    return raw


def worker_main(
    stdin: TextIO | None = None, protocol_out: TextIO | None = None
) -> int:
    """Run the worker loop; returns the process exit code.

    ``stdin``/``protocol_out`` exist for in-process tests; the CLI passes
    nothing and the real descriptors are used, with fd 1 dup'd for the
    protocol before ``sys.stdout`` is redirected to stderr.
    """
    if stdin is None:
        stdin = sys.stdin
    if protocol_out is None:
        # Claim the real stdout for the protocol; figure prints go to
        # stderr from here on.
        protocol_out = os.fdopen(os.dup(1), "w", buffering=1)
        sys.stdout = sys.stderr

    def send(message: dict[str, Any]) -> None:
        protocol_out.write(json.dumps(message, separators=(",", ":")))
        protocol_out.write("\n")
        protocol_out.flush()

    compute: Callable[[Any], tuple[int, dict]] | None = None
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        message = json.loads(line)
        kind = message.get("type")
        if kind == "init":
            for entry in message.get("sys_path") or []:
                if entry not in sys.path:
                    sys.path.append(entry)
            for spec in message.get("preload") or []:
                resolve_callable(spec)()
            compute = resolve_callable(message["compute"])
            send({"type": "ready"})
        elif kind == "job":
            if compute is None:
                raise RuntimeError("protocol error: 'job' before 'init'")
            payload = _as_payload(message["payload"])
            index, result = guard(compute, payload)
            send({"type": "result", "index": index, "result": result})
        elif kind == "shutdown":
            break
        else:
            raise RuntimeError(f"protocol error: unknown message {kind!r}")
    return 0

"""Machine-readable run manifest for experiment sweeps.

Every :func:`repro.runner.run_jobs` call produces a :class:`RunManifest`
summarizing what ran, what was served from cache, and what it cost.  The
JSON schema (``repro.runner/manifest/v2``)::

    {
      "schema": "repro.runner/manifest/v2",
      "version": "1.3.0",            // repro package version
      "workers": 4,                  // pool size used
      "cache_dir": ".repro-cache",   // null when caching was disabled
      "cache_hits": 3,
      "cache_misses": 5,
      "wall_time_s": 12.81,          // whole-sweep wall clock
      "jobs": [
        {
          "figure": "fig5",
          "seed": 0,
          "params": {"duration_ms": 3000, "crash_ms": 1500},
          "key": "ab3f…9c",          // content address in the cache
          "cached": false,
          "wall_time_s": 0.52,       // 0.0 for cache hits
          "rows": 60,
          "stats": {                 // Simulator.stats totals; null if cached
            "simulators": 1,
            "events_scheduled": 241035,
            "events_executed": 240911,
            "processes_started": 12,
            "sim_time_ns": 3000000000
          },
          "rows_path": "results/fig5.csv",  // when the caller exported rows
          // -- v2 observability fields (null unless the sweep ran with
          //    tracing/profiling enabled; see repro.obs) -------------------
          "metrics": {               // repro.obs MetricsRegistry.snapshot()
            "counters": {"net.host.frames{direction=rx,host=io}": 401, ...},
            "gauges": {},
            "histograms": {"net.port.tx_ns": {"edges": [...], "counts": [...],
                           "count": 1692, "sum": ..., "min": ..., "max": ...}}
          },
          "hotspots": [              // Profiler.as_rows(): hottest first
            {"name": "P4Switch.receive.<locals>.<lambda>", "calls": 846,
             "total_ns": 28610000, "max_ns": 865390, "mean_ns": 33814.4}
          ],
          "trace_path": "traces/fig5.seed0.job3.trace.json",
          // -- verdict (null unless the spec declares a verdict function;
          //    chaos campaigns record "pass"/"fail" compliance here) ------
          "verdict": "pass"
        }
      ]
    }

**Backward compatibility:** v1 manifests (schema
``repro.runner/manifest/v1``) are the same document minus the three
observability fields and ``verdict``; :meth:`RunManifest.from_dict` reads
either version and fills the missing fields with ``None``, so tooling
written against v2 loads old manifests unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import __version__

MANIFEST_SCHEMA_V1 = "repro.runner/manifest/v1"
MANIFEST_SCHEMA = "repro.runner/manifest/v2"

#: Schemas :meth:`RunManifest.from_dict` knows how to read.
READABLE_SCHEMAS = (MANIFEST_SCHEMA_V1, MANIFEST_SCHEMA)


@dataclass
class JobRecord:
    """One (figure, seed, params) cell of a sweep."""

    figure: str
    seed: int
    params: dict[str, Any]
    key: str
    cached: bool
    wall_time_s: float
    rows: int
    stats: dict[str, int] | None = None
    rows_path: str | None = None
    #: ``repro.obs`` metrics snapshot (v2; ``None`` when obs was off).
    metrics: dict[str, Any] | None = None
    #: Profiler hot-spot rows, hottest first (v2; ``None`` when not profiled).
    hotspots: list[dict[str, Any]] | None = None
    #: Chrome trace-event file written for this job (v2).
    trace_path: str | None = None
    #: Spec verdict over the rows (v2; chaos campaigns: "pass"/"fail").
    verdict: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "figure": self.figure,
            "seed": self.seed,
            "params": self.params,
            "key": self.key,
            "cached": self.cached,
            "wall_time_s": round(self.wall_time_s, 6),
            "rows": self.rows,
            "stats": self.stats,
            "rows_path": self.rows_path,
            "metrics": self.metrics,
            "hotspots": self.hotspots,
            "trace_path": self.trace_path,
            "verdict": self.verdict,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        """Rebuild a record from manifest JSON (v1 fields always present)."""
        return cls(
            figure=payload["figure"],
            seed=payload["seed"],
            params=dict(payload.get("params") or {}),
            key=payload["key"],
            cached=payload["cached"],
            wall_time_s=payload.get("wall_time_s", 0.0),
            rows=payload.get("rows", 0),
            stats=payload.get("stats"),
            rows_path=payload.get("rows_path"),
            metrics=payload.get("metrics"),
            hotspots=payload.get("hotspots"),
            trace_path=payload.get("trace_path"),
            verdict=payload.get("verdict"),
        )


@dataclass
class RunManifest:
    """Summary of one sweep: job records plus cache/timing counters."""

    workers: int
    cache_dir: str | None
    wall_time_s: float = 0.0
    records: list[JobRecord] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "version": __version__,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": round(self.wall_time_s, 6),
            "jobs": [record.as_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its JSON form (schema v1 or v2)."""
        schema = payload.get("schema")
        if schema not in READABLE_SCHEMAS:
            raise ValueError(
                f"unsupported manifest schema {schema!r}; "
                f"readable: {', '.join(READABLE_SCHEMAS)}"
            )
        return cls(
            workers=payload.get("workers", 1),
            cache_dir=payload.get("cache_dir"),
            wall_time_s=payload.get("wall_time_s", 0.0),
            records=[
                JobRecord.from_dict(job) for job in payload.get("jobs", [])
            ],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Path | str) -> "RunManifest":
        """Read a manifest file written by ``repro sweep``/``repro all``."""
        return cls.from_json(Path(path).read_text())

"""Machine-readable run manifest for experiment sweeps.

Every :func:`repro.runner.run_jobs` call produces a :class:`RunManifest`
summarizing what ran, what failed, what was served from cache, and what
it cost.  The JSON schema (``repro.runner/manifest/v3``)::

    {
      "schema": "repro.runner/manifest/v3",
      "version": "1.4.0",            // repro package version
      "workers": 4,                  // pool size used
      "cache_dir": ".repro-cache",   // null when caching was disabled
      "cache_hits": 3,
      "cache_misses": 5,
      "failed": 1,                   // jobs with status failed/timeout
      "wall_time_s": 12.81,          // whole-sweep wall clock
      "jobs": [
        {
          "figure": "fig5",
          "seed": 0,
          "params": {"duration_ms": 3000, "crash_ms": 1500},
          "key": "ab3f…9c",          // content address in the cache
          "cached": false,
          "wall_time_s": 0.52,       // cache-service time for cache hits
          "rows": 60,
          // -- v3 supervision fields (see repro.runner.supervisor) ---------
          "status": "ok",            // "ok" | "failed" | "timeout" | "cached"
          "error": null,             // one-line error for failed/timeout jobs
          "traceback": null,         // worker traceback when one was caught
          "attempts": 1,             // executions incl. retries
          // -- PR-8 distributed/streaming fields (additive, optional) ------
          "backend": "local-pool",   // executor backend (null for cache hits)
          "row_chunks": null,        // chunked JSONL row files when streamed
          // -- PR-10 sweep-trace timing fields (additive; null unless the
          //    sweep ran with --sweeptrace; see repro.obs.sweeptrace) ------
          "queue_s": 0.004,          // submission -> first attempt start
          "compute_s": 0.52,         // execution time across all attempts
          "attempt_timings": [       // one entry per execution attempt
            {"attempt": 1, "outcome": "ok", "start_s": 0.004, "wall_s": 0.52}
          ],
          "span": "9d41c2b07a3e5f18",  // span id in sweep.events.jsonl
          "stats": {                 // Simulator.stats totals; null if cached
            "simulators": 1,
            "events_scheduled": 241035,
            "events_executed": 240911,
            "processes_started": 12,
            "sim_time_ns": 3000000000
          },
          "rows_path": "results/fig5.csv",  // when the caller exported rows
          // -- v2 observability fields (null unless the sweep ran with
          //    tracing/profiling enabled; see repro.obs) -------------------
          "metrics": {               // repro.obs MetricsRegistry.snapshot()
            "counters": {"net.host.frames{direction=rx,host=io}": 401, ...},
            "gauges": {},
            "histograms": {"net.port.tx_ns": {"edges": [...], "counts": [...],
                           "count": 1692, "sum": ..., "min": ..., "max": ...}}
          },
          "hotspots": [              // Profiler.as_rows(): hottest first
            {"name": "P4Switch.receive.<locals>.<lambda>", "calls": 846,
             "total_ns": 28610000, "max_ns": 865390, "mean_ns": 33814.4}
          ],
          "trace_path": "traces/fig5.seed0.job3.trace.json",
          // -- in-band network telemetry (null unless the sweep ran with
          //    telemetry_dir=; see repro.obs.telemetry) -------------------
          "telemetry": {"postcards": 910, "top_queues": [...],
                        "links": [...], "flight_snapshots": 0},
          "telemetry_path": "telemetry/fig5.seed0.job3.telemetry.json",
          // -- verdict (null unless the spec declares a verdict function;
          //    chaos campaigns record "pass"/"fail" compliance here) ------
          "verdict": "pass"
        }
      ]
    }

**Backward compatibility:** v2 manifests (schema
``repro.runner/manifest/v2``) are the same document minus the four
supervision fields, and v1 manifests additionally lack the observability
fields and ``verdict``; :meth:`RunManifest.from_dict` reads all three
versions, fills missing optional fields with ``None``, and derives
``status`` for pre-v3 records (``"cached"`` when the job was a cache hit,
``"ok"`` otherwise — pre-v3 sweeps aborted instead of recording
failures), so tooling written against v3 loads old manifests unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import __version__

MANIFEST_SCHEMA_V1 = "repro.runner/manifest/v1"
MANIFEST_SCHEMA_V2 = "repro.runner/manifest/v2"
MANIFEST_SCHEMA = "repro.runner/manifest/v3"

#: Schemas :meth:`RunManifest.from_dict` knows how to read.
READABLE_SCHEMAS = (MANIFEST_SCHEMA_V1, MANIFEST_SCHEMA_V2, MANIFEST_SCHEMA)

#: Job statuses that carry usable rows (mirrors ``supervisor.OK_STATUSES``
#: without importing it: the manifest layer stays dependency-free).
_OK_STATUSES = ("ok", "cached")


@dataclass
class JobRecord:
    """One (figure, seed, params) cell of a sweep."""

    figure: str
    seed: int
    params: dict[str, Any]
    key: str
    cached: bool
    wall_time_s: float
    rows: int
    stats: dict[str, int] | None = None
    rows_path: str | None = None
    #: ``repro.obs`` metrics snapshot (v2; ``None`` when obs was off).
    metrics: dict[str, Any] | None = None
    #: Profiler hot-spot rows, hottest first (v2; ``None`` when not profiled).
    hotspots: list[dict[str, Any]] | None = None
    #: Chrome trace-event file written for this job (v2).
    trace_path: str | None = None
    #: Spec verdict over the rows (v2; chaos campaigns: "pass"/"fail").
    verdict: str | None = None
    #: In-band network telemetry digest (``TelemetryHub.summary()``;
    #: ``None`` unless the sweep ran with ``telemetry_dir=``).
    telemetry: dict[str, Any] | None = None
    #: Full ``.telemetry.json`` snapshot written for this job.
    telemetry_path: str | None = None
    #: Executor backend that computed the job (PR-8: "serial",
    #: "local-pool", "subprocess"; ``None`` for cache hits and pre-PR-8
    #: manifests).
    backend: str | None = None
    #: Chunked JSONL row files when the sweep streamed rows to disk
    #: (see :mod:`repro.runner.rowstream`); ``None`` for in-memory runs.
    row_chunks: list[str] | None = None
    #: Terminal state (v3): "ok", "failed", "timeout", or "cached".
    status: str = "ok"
    #: One-line error description for failed/timeout jobs (v3).
    error: str | None = None
    #: Worker traceback, when the failure raised inside the figure (v3).
    traceback: str | None = None
    #: Number of executions, including retries (v3).
    attempts: int = 1
    #: Seconds between submission to the backend and the first execution
    #: attempt (PR-10 sweep tracing; ``None`` when tracing was off).
    queue_s: float | None = None
    #: Seconds of actual execution across all attempts (PR-10).
    compute_s: float | None = None
    #: Per-attempt ``{"attempt", "outcome", "start_s", "wall_s"}`` log
    #: from the sweep trace (PR-10; ``None`` when tracing was off).
    attempt_timings: list[dict[str, Any]] | None = None
    #: Sweep-trace span id correlating this record with
    #: ``sweep.events.jsonl`` and the job's Chrome trace (PR-10).
    span: str | None = None

    @property
    def ok(self) -> bool:
        """Whether this record's rows are usable (status ok/cached)."""
        return self.status in _OK_STATUSES

    def as_dict(self) -> dict[str, Any]:
        return {
            "figure": self.figure,
            "seed": self.seed,
            "params": self.params,
            "key": self.key,
            "cached": self.cached,
            "wall_time_s": round(self.wall_time_s, 6),
            "rows": self.rows,
            "stats": self.stats,
            "rows_path": self.rows_path,
            "metrics": self.metrics,
            "hotspots": self.hotspots,
            "trace_path": self.trace_path,
            "verdict": self.verdict,
            "telemetry": self.telemetry,
            "telemetry_path": self.telemetry_path,
            "backend": self.backend,
            "row_chunks": self.row_chunks,
            "status": self.status,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "queue_s": self.queue_s,
            "compute_s": self.compute_s,
            "attempt_timings": self.attempt_timings,
            "span": self.span,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        """Rebuild a record from manifest JSON (v1 fields always present).

        Pre-v3 records carry no ``status``; it is derived from ``cached``
        (pre-v3 sweeps aborted on the first failure, so every recorded
        job either computed or hit the cache).
        """
        cached = payload["cached"]
        return cls(
            figure=payload["figure"],
            seed=payload["seed"],
            params=dict(payload.get("params") or {}),
            key=payload["key"],
            cached=cached,
            wall_time_s=payload.get("wall_time_s", 0.0),
            rows=payload.get("rows", 0),
            stats=payload.get("stats"),
            rows_path=payload.get("rows_path"),
            metrics=payload.get("metrics"),
            hotspots=payload.get("hotspots"),
            trace_path=payload.get("trace_path"),
            verdict=payload.get("verdict"),
            telemetry=payload.get("telemetry"),
            telemetry_path=payload.get("telemetry_path"),
            backend=payload.get("backend"),
            row_chunks=payload.get("row_chunks"),
            status=payload.get("status") or ("cached" if cached else "ok"),
            error=payload.get("error"),
            traceback=payload.get("traceback"),
            attempts=payload.get("attempts", 1),
            queue_s=payload.get("queue_s"),
            compute_s=payload.get("compute_s"),
            attempt_timings=payload.get("attempt_timings"),
            span=payload.get("span"),
        )


@dataclass
class RunManifest:
    """Summary of one sweep: job records plus cache/timing counters."""

    workers: int
    cache_dir: str | None
    wall_time_s: float = 0.0
    records: list[JobRecord] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    @property
    def failed(self) -> int:
        """Jobs that ended failed or timed out after exhausting retries."""
        return sum(1 for record in self.records if not record.ok)

    @property
    def degraded(self) -> bool:
        """Whether the sweep completed with at least one failed job."""
        return self.failed > 0

    def failures(self) -> list[JobRecord]:
        """The failed/timeout records, in job order."""
        return [record for record in self.records if not record.ok]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "version": __version__,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failed": self.failed,
            "wall_time_s": round(self.wall_time_s, 6),
            "jobs": [record.as_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its JSON form (schema v1 or v2)."""
        schema = payload.get("schema")
        if schema not in READABLE_SCHEMAS:
            raise ValueError(
                f"unsupported manifest schema {schema!r}; "
                f"readable: {', '.join(READABLE_SCHEMAS)}"
            )
        return cls(
            workers=payload.get("workers", 1),
            cache_dir=payload.get("cache_dir"),
            wall_time_s=payload.get("wall_time_s", 0.0),
            records=[
                JobRecord.from_dict(job) for job in payload.get("jobs", [])
            ],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Path | str) -> "RunManifest":
        """Read a manifest file written by ``repro sweep``/``repro all``."""
        return cls.from_json(Path(path).read_text())

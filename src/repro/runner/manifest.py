"""Machine-readable run manifest for experiment sweeps.

Every :func:`repro.runner.run_jobs` call produces a :class:`RunManifest`
summarizing what ran, what was served from cache, and what it cost.  The
JSON schema (``repro.runner/manifest/v1``)::

    {
      "schema": "repro.runner/manifest/v1",
      "version": "1.1.0",            // repro package version
      "workers": 4,                  // pool size used
      "cache_dir": ".repro-cache",   // null when caching was disabled
      "cache_hits": 3,
      "cache_misses": 5,
      "wall_time_s": 12.81,          // whole-sweep wall clock
      "jobs": [
        {
          "figure": "fig5",
          "seed": 0,
          "params": {"duration_ms": 3000, "crash_ms": 1500},
          "key": "ab3f…9c",          // content address in the cache
          "cached": false,
          "wall_time_s": 0.52,       // 0.0 for cache hits
          "rows": 60,
          "stats": {                 // Simulator.stats totals; null if cached
            "simulators": 1,
            "events_scheduled": 241035,
            "events_executed": 240911,
            "processes_started": 12,
            "sim_time_ns": 3000000000
          },
          "rows_path": "results/fig5.csv"   // when the caller exported rows
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .. import __version__

MANIFEST_SCHEMA = "repro.runner/manifest/v1"


@dataclass
class JobRecord:
    """One (figure, seed, params) cell of a sweep."""

    figure: str
    seed: int
    params: dict[str, Any]
    key: str
    cached: bool
    wall_time_s: float
    rows: int
    stats: dict[str, int] | None = None
    rows_path: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "figure": self.figure,
            "seed": self.seed,
            "params": self.params,
            "key": self.key,
            "cached": self.cached,
            "wall_time_s": round(self.wall_time_s, 6),
            "rows": self.rows,
            "stats": self.stats,
            "rows_path": self.rows_path,
        }


@dataclass
class RunManifest:
    """Summary of one sweep: job records plus cache/timing counters."""

    workers: int
    cache_dir: str | None
    wall_time_s: float = 0.0
    records: list[JobRecord] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "version": __version__,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": round(self.wall_time_s, 6),
            "jobs": [record.as_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

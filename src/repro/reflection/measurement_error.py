"""Tap vs. PTP: quantifying the measurement-method argument of Section 3.

Traffic Reflection exists because "all packet capture timestamps come from
a single clock (the tap's clock), avoiding measurement errors caused by
clock synchronization problems": PTP reaches sub-microsecond sync but
suffers from asymmetric path delays, while the tap's only error is its
8 ns timestamp quantization.

This module measures exactly that: the same ground-truth one-way delays
observed (a) through a single tap clock and (b) through two PTP-
synchronized endpoint clocks, returning the error distributions of both
methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simcore.clock import Clock, PtpSyncModel, tap_clock
from ..simcore.units import SEC


@dataclass(frozen=True)
class MeasurementErrorResult:
    """Absolute measurement errors (ns) of both methods on the same truth."""

    tap_errors_ns: np.ndarray
    ptp_errors_ns: np.ndarray

    def tap_p99_ns(self) -> float:
        """99th percentile of the tap method's absolute error."""
        return float(np.percentile(self.tap_errors_ns, 99))

    def ptp_p99_ns(self) -> float:
        """99th percentile of the PTP method's absolute error."""
        return float(np.percentile(self.ptp_errors_ns, 99))

    def advantage_factor(self) -> float:
        """How many times smaller the tap's p99 error is."""
        tap = max(self.tap_p99_ns(), 1e-9)
        return self.ptp_p99_ns() / tap


def compare_tap_vs_ptp(
    samples: int = 2_000,
    true_delay_mean_ns: float = 10_000.0,
    true_delay_std_ns: float = 400.0,
    tap_granularity_ns: int = 8,
    ptp: PtpSyncModel | None = None,
    seed: int = 0,
) -> MeasurementErrorResult:
    """Measure the same one-way delays with both methods.

    For each sample a ground-truth delay is drawn; the tap method reads
    departure and arrival on *one* clock, while the PTP method reads the
    departure on the sender's synchronized clock and the arrival on the
    receiver's — each carrying its own residual sync error.
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(seed)
    ptp_model = ptp or PtpSyncModel()
    tap = tap_clock(granularity_ns=tap_granularity_ns)
    # Two independently synchronized endpoint clocks.  Asymmetry biases
    # them in *opposite* directions on the two sides of the path, which is
    # what makes one-way measurements hard.
    sender_clock = Clock(
        name="sender",
        offset_ns=+ptp_model.path_asymmetry_ns / 2.0,
        drift_ppm=ptp_model.residual_drift_ppm,
        noise_std_ns=ptp_model.timestamp_noise_ns,
        rng=rng,
    )
    receiver_clock = Clock(
        name="receiver",
        offset_ns=-ptp_model.path_asymmetry_ns / 2.0,
        drift_ppm=-ptp_model.residual_drift_ppm,
        noise_std_ns=ptp_model.timestamp_noise_ns,
        rng=rng,
    )
    tap_errors = np.empty(samples)
    ptp_errors = np.empty(samples)
    for index in range(samples):
        departure = int(rng.integers(0, int(0.5 * SEC)))
        true_delay = max(
            1.0, rng.normal(true_delay_mean_ns, true_delay_std_ns)
        )
        arrival = departure + int(round(true_delay))
        tap_measured = tap.read(arrival) - tap.read(departure)
        ptp_measured = receiver_clock.read(arrival) - sender_clock.read(
            departure
        )
        tap_errors[index] = abs(tap_measured - true_delay)
        ptp_errors[index] = abs(ptp_measured - true_delay)
    return MeasurementErrorResult(
        tap_errors_ns=tap_errors, ptp_errors_ns=ptp_errors
    )

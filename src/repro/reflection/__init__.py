"""Traffic Reflection — the Section 3 measurement method.

A single-clock tap and a reflection point in the XDP program reveal the
hidden, code-dependent delays of eBPF/XDP pipelines.
"""

from .harness import (
    ReflectionResult,
    run_flow_scaling,
    run_reflection,
    run_variant_sweep,
)
from .measurement_error import MeasurementErrorResult, compare_tap_vs_ptp
from .tap import Tap, TapRecord

__all__ = [
    "MeasurementErrorResult",
    "ReflectionResult",
    "Tap",
    "TapRecord",
    "compare_tap_vs_ptp",
    "run_flow_scaling",
    "run_reflection",
    "run_variant_sweep",
]

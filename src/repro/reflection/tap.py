"""The passive network tap.

Section 3's key measurement trick: a hardware tap stamps frames in *both*
directions with one clock (8 ns precision), eliminating clock-sync error
between endpoints.  :class:`Tap` is a two-port pass-through device that
records a :class:`TapRecord` per frame and forwards the signal without
re-serializing it (a passive tap repeats the wire, it does not queue).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.device import Device
from ..net.link import Port
from ..net.packet import Packet
from ..simcore import Simulator
from ..simcore.clock import Clock, tap_clock


@dataclass(frozen=True)
class TapRecord:
    """One captured frame."""

    flow_id: str
    sequence: int
    direction: int  # ingress port index (0 = A-side, 1 = B-side)
    timestamp_ns: int  # tap-clock reading
    frame_bytes: int


class Tap(Device):
    """A passive two-port tap with single-clock timestamping."""

    SIDE_A = 0
    SIDE_B = 1

    def __init__(
        self,
        sim: Simulator,
        name: str = "tap",
        clock: Clock | None = None,
        passthrough_ns: int = 8,
    ) -> None:
        super().__init__(sim, name)
        self.clock = clock or tap_clock(name=f"{name}/clock")
        self.passthrough_ns = passthrough_ns
        self.records: list[TapRecord] = []

    def receive(self, packet: Packet, in_port: Port) -> None:
        self.records.append(
            TapRecord(
                flow_id=packet.flow_id,
                sequence=packet.sequence,
                direction=in_port.index,
                timestamp_ns=self.clock.read(self.sim.now),
                frame_bytes=packet.frame_bytes,
            )
        )
        out_port = self.ports[1 - in_port.index]
        link = out_port.link
        if link is None:
            return
        # Passive pass-through: the frame is already on the wire; repeat it
        # to the far side without serializing again.
        self.sim.schedule(
            lambda: link.propagate(packet, out_port), after=self.passthrough_ns
        )

    def records_by_direction(self, direction: int) -> list[TapRecord]:
        """All records captured on one ingress side."""
        return [r for r in self.records if r.direction == direction]

    def clear(self) -> None:
        """Drop all captured records."""
        self.records.clear()

"""The Traffic Reflection measurement harness (Section 3 / Figure 4).

Topology, mirroring the paper's Figure 3::

    sender ──wire── TAP ──wire── reflector (XDP program, native mode)

The sender emits one or more cyclic TSN-style flows; the reflector's XDP
program reflects every frame; the tap stamps each frame in both directions
with its single 8 ns clock.  Per-frame *delay* is the tap-to-tap round trip
(host residence plus two short wire segments); per-flow *jitter* is the
cycle-to-cycle variation of that delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ebpf.program import XdpProgram
from ..hoststack.kernel import KernelNoiseModel, PREEMPT_RT_ISOLATED
from ..hoststack.path import XdpHostModel, XdpReflectorHost
from ..metrics.cdf import Cdf
from ..net.flows import CyclicSender, FlowSpec
from ..net.host import Host
from ..net.link import Link
from ..net.packet import TrafficClass
from ..simcore import Simulator
from ..simcore.units import MS, SEC, US
from .tap import Tap


@dataclass
class ReflectionResult:
    """Measurements of one Traffic Reflection run."""

    program_name: str
    flow_count: int
    period_ns: int
    #: flow id -> per-cycle tap-to-tap delay (µs), in cycle order
    delays_us: dict[str, np.ndarray] = field(default_factory=dict)
    unmatched_frames: int = 0

    def all_delays_us(self) -> np.ndarray:
        """Every delay sample across flows."""
        if not self.delays_us:
            return np.empty(0)
        return np.concatenate(list(self.delays_us.values()))

    def delay_cdf(self) -> Cdf:
        """CDF of per-frame delay (µs) — Figure 4, left panel."""
        return Cdf.from_samples(self.all_delays_us())

    def jitter_samples_ns(self) -> np.ndarray:
        """Cycle-to-cycle |delay difference| per flow, in nanoseconds."""
        chunks = [
            np.abs(np.diff(samples)) * 1_000.0
            for samples in self.delays_us.values()
            if samples.size >= 2
        ]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)

    def jitter_cdf(self) -> Cdf:
        """CDF of jitter (ns) — Figure 4, right panel."""
        return Cdf.from_samples(self.jitter_samples_ns())


def run_reflection(
    program: XdpProgram,
    flow_count: int = 1,
    cycles: int = 500,
    period_ns: int = 2 * MS,
    payload_bytes: int = 50,
    seed: int = 0,
    kernel: KernelNoiseModel = PREEMPT_RT_ISOLATED,
    bandwidth_bps: float = 1e9,
    wire_delay_ns: int = 50,
) -> ReflectionResult:
    """Run one Traffic Reflection experiment and return its measurements.

    Parameters follow the paper's setup: 1 Gbit/s links, small cyclic
    payloads, PREEMPT_RT end hosts, XDP native mode.
    """
    if flow_count < 1:
        raise ValueError("need at least one flow")
    if cycles < 2:
        raise ValueError("need at least two cycles for jitter")
    sim = Simulator(seed=seed)
    sender = Host(sim, "sender")
    tap = Tap(sim, "tap")
    model = XdpHostModel(
        program=program,
        rng=sim.streams.stream("reflector/exec"),
        kernel=kernel,
        active_flows=flow_count,
    )
    reflector = XdpReflectorHost(sim, "reflector", model)
    # sender <-> tap side A, tap side B <-> reflector
    sender_port = sender.add_port()
    tap_a = tap.add_port()
    tap_b = tap.add_port()
    reflector_port = reflector.add_port()
    Link(sim, sender_port, tap_a, bandwidth_bps, wire_delay_ns)
    Link(sim, tap_b, reflector_port, bandwidth_bps, wire_delay_ns)

    offsets_rng = sim.streams.stream("harness/offsets")
    senders: list[CyclicSender] = []
    for index in range(flow_count):
        spec = FlowSpec(
            flow_id=f"flow{index}",
            src="sender",
            dst="reflector",
            period_ns=period_ns,
            payload_bytes=payload_bytes,
            traffic_class=TrafficClass.CYCLIC_RT,
        )
        start = int(offsets_rng.integers(0, period_ns))
        senders.append(CyclicSender(sim, sender, spec, start_ns=start))
    for cyclic_sender in senders:
        cyclic_sender.start()

    horizon = (cycles + 2) * period_ns
    sim.run(until=horizon)
    for cyclic_sender in senders:
        cyclic_sender.stop()
    sim.run(until=horizon + 10 * period_ns)  # drain in-flight frames

    return _collect(tap, program.name, flow_count, period_ns, cycles)


def _collect(
    tap: Tap,
    program_name: str,
    flow_count: int,
    period_ns: int,
    cycles: int,
) -> ReflectionResult:
    toward: dict[tuple[str, int], int] = {}
    back: dict[tuple[str, int], int] = {}
    for record in tap.records:
        key = (record.flow_id, record.sequence)
        if record.direction == Tap.SIDE_A:
            toward[key] = record.timestamp_ns
        else:
            back[key] = record.timestamp_ns
    result = ReflectionResult(
        program_name=program_name,
        flow_count=flow_count,
        period_ns=period_ns,
    )
    per_flow: dict[str, list[tuple[int, float]]] = {}
    unmatched = 0
    for key, sent_ns in toward.items():
        returned_ns = back.get(key)
        if returned_ns is None:
            unmatched += 1
            continue
        flow_id, sequence = key
        per_flow.setdefault(flow_id, []).append(
            (sequence, (returned_ns - sent_ns) / US)
        )
    result.unmatched_frames = unmatched
    for flow_id, samples in per_flow.items():
        samples.sort()
        trimmed = samples[:cycles]
        result.delays_us[flow_id] = np.array([d for _, d in trimmed])
    return result


def run_variant_sweep(
    programs: list[XdpProgram],
    flow_count: int = 1,
    cycles: int = 500,
    seed: int = 0,
    **kwargs,
) -> dict[str, ReflectionResult]:
    """Figure 4 left: one run per program variant, same seed & load."""
    return {
        program.name: run_reflection(
            program, flow_count=flow_count, cycles=cycles, seed=seed, **kwargs
        )
        for program in programs
    }


def run_flow_scaling(
    program: XdpProgram,
    flow_counts: list[int],
    cycles: int = 500,
    seed: int = 0,
    **kwargs,
) -> dict[int, ReflectionResult]:
    """Figure 4 right: same program under increasing concurrent flows."""
    return {
        count: run_reflection(
            program, flow_count=count, cycles=cycles, seed=seed, **kwargs
        )
        for count in flow_counts
    }
